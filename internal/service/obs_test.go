package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/aiql/aiql/internal/obs"
)

// sumScanSpans walks a span tree and totals the events_scanned attr of
// every "scan *" span.
func sumScanSpans(n *obs.SpanNode) int64 {
	if n == nil {
		return 0
	}
	var sum int64
	if strings.HasPrefix(n.Name, "scan ") {
		sum += n.Attrs["events_scanned"]
	}
	for _, c := range n.Children {
		sum += sumScanSpans(c)
	}
	return sum
}

// TestTraceSpanTree: a trace-enabled query returns a span tree whose
// scan spans account for exactly the events the untraced counter
// reports (the issue's acceptance criterion).
func TestTraceSpanTree(t *testing.T) {
	svc := New(fig4DB(), Config{})
	resp, err := svc.Do(context.Background(), Request{Query: fig4Query, Trace: true})
	if err != nil {
		t.Fatalf("traced query: %v", err)
	}
	if resp.Trace == nil {
		t.Fatal("trace requested but Response.Trace is nil")
	}
	if resp.Trace.Name != "query" {
		t.Errorf("root span = %q, want query", resp.Trace.Name)
	}
	var names []string
	for _, c := range resp.Trace.Children {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "parse") && !strings.Contains(joined, "plan") {
		t.Errorf("trace has no parse/plan span: %v", names)
	}
	if !strings.Contains(joined, "scan ") {
		t.Errorf("trace has no scan spans: %v", names)
	}
	if got, want := sumScanSpans(resp.Trace), resp.Stats.ScannedEvents; got != want {
		t.Errorf("scan spans sum %d events_scanned, Stats.ScannedEvents = %d", got, want)
	}
	if resp.Stats.ScannedEvents == 0 {
		t.Error("fig4 query scanned zero events; trace accounting untestable")
	}

	// An untraced request must not leak the tree.
	plain, err := svc.Do(context.Background(), Request{Query: fig4Query})
	if err != nil {
		t.Fatalf("untraced query: %v", err)
	}
	if plain.Trace != nil {
		t.Error("untraced response carries a span tree")
	}
}

// TestTraceBypassesResultCache: EXPLAIN ANALYZE semantics — a traced
// request re-executes even when the result cache holds the answer (its
// spans must describe a real execution), but still fills the cache.
func TestTraceBypassesResultCache(t *testing.T) {
	svc := New(newTestDB(t, 50), Config{})
	ctx := context.Background()
	if _, err := svc.Do(ctx, Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	traced, err := svc.Do(ctx, Request{Query: demoQuery, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Cached {
		t.Error("traced request served from cache; spans describe no execution")
	}
	if traced.Trace == nil {
		t.Error("traced re-execution returned no span tree")
	}
	warm, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("traced execution did not refresh the result cache")
	}
}

// TestConcurrentTracedQueries exercises trace-enabled executions racing
// each other and untraced ones (run under -race in CI).
func TestConcurrentTracedQueries(t *testing.T) {
	svc := New(newTestDB(t, 200), Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(traced bool) {
			defer wg.Done()
			resp, err := svc.Do(context.Background(), Request{Query: demoQuery, Trace: traced})
			if err != nil {
				errs <- err
				return
			}
			if traced && resp.Trace == nil {
				errs <- errors.New("traced query returned nil trace")
			}
		}(i%2 == 0)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSlowLogRecordsExecutions: with a zero threshold every query lands
// in the log, carrying dataset, normalized text, and span summaries.
func TestSlowLogRecordsExecutions(t *testing.T) {
	sl := obs.NewSlowLog(0, 8)
	svc := New(newTestDB(t, 30), Config{Dataset: "unit", SlowLog: sl})
	if _, err := svc.Do(context.Background(), Request{Query: "  proc   p  write file f as evt\nreturn p, f"}); err != nil {
		t.Fatal(err)
	}
	entries, total := sl.Snapshot()
	if total != 1 || len(entries) != 1 {
		t.Fatalf("slow log has %d entries (total %d), want 1", len(entries), total)
	}
	e := entries[0]
	if e.Dataset != "unit" {
		t.Errorf("dataset = %q, want unit", e.Dataset)
	}
	if e.Query != "proc p write file f as evt return p, f" {
		t.Errorf("query not normalized: %q", e.Query)
	}
	if e.Kind != "multievent" {
		t.Errorf("kind = %q", e.Kind)
	}
	if len(e.Spans) == 0 {
		t.Error("slow entry has no span summaries (untraced executions must still time spans)")
	}
	if e.ScannedEvents == 0 {
		t.Error("slow entry reports zero scanned events")
	}
	if e.DurationMS < 0 {
		t.Errorf("duration = %v", e.DurationMS)
	}
}

// TestStreamSinkErrorStillObserved: when a client disconnects
// mid-stream (row sink fails), latency and scanned-events metrics must
// still be recorded (satellite: disconnect paths feed observability).
func TestStreamSinkErrorStillObserved(t *testing.T) {
	sl := obs.NewSlowLog(0, 8)
	svc := New(newTestDB(t, 100), Config{Dataset: "unit", SlowLog: sl})
	sinkErr := errors.New("client went away")
	n := 0
	resp, err := svc.DoStream(context.Background(), Request{Query: demoQuery},
		func(cols []string, cached bool) error { return nil },
		func(row []string) error {
			n++
			if n >= 3 {
				return sinkErr
			}
			return nil
		})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if resp == nil {
		t.Fatal("disconnected stream returned nil response; stats are lost")
	}
	st := svc.Stats()
	if st.ScannedEvents == 0 {
		t.Error("disconnect dropped the scanned-events accounting")
	}
	if _, total := sl.Snapshot(); total != 1 {
		t.Errorf("disconnected stream not in slow log (total=%d)", total)
	}
}

// TestScannedEventsNotDoubleCounted: cache hits must not re-count the
// leader's scan work.
func TestScannedEventsNotDoubleCounted(t *testing.T) {
	svc := New(newTestDB(t, 40), Config{})
	ctx := context.Background()
	if _, err := svc.Do(ctx, Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	cold := svc.Stats().ScannedEvents
	if cold == 0 {
		t.Fatal("cold query scanned zero events")
	}
	if _, err := svc.Do(ctx, Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	if warm := svc.Stats().ScannedEvents; warm != cold {
		t.Errorf("cache hit re-counted scans: %d -> %d", cold, warm)
	}
}

// TestQueryMetricsRegistered: per-dataset instruments land in the
// registry and move when queries run.
func TestQueryMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	svc := New(newTestDB(t, 25), Config{Dataset: "unit", Metrics: reg})
	if _, err := svc.Do(context.Background(), Request{Query: demoQuery}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `aiql_query_duration_seconds_count{dataset="unit"} 1`) {
		t.Errorf("duration histogram missing/unmoved:\n%s", out)
	}
	if !strings.Contains(out, `aiql_query_scanned_events_total{dataset="unit"} `) ||
		strings.Contains(out, `aiql_query_scanned_events_total{dataset="unit"} 0`) {
		t.Errorf("scanned-events counter missing/unmoved:\n%s", out)
	}
}

// TestHTTPTraceAndSlowEndpoints: the trace flag round-trips the JSON
// API and /api/v1/queries/slow serves the shared log.
func TestHTTPTraceAndSlowEndpoints(t *testing.T) {
	sl := obs.NewSlowLog(0, 8)
	svc := New(newTestDB(t, 10), Config{Dataset: "unit", SlowLog: sl})
	h := svc.Handler()

	rec := doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "trace": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decodeResult(t, rec)
	if out.Trace == nil || out.Trace.Name != "query" {
		t.Fatalf("trace missing from JSON response: %+v", out.Trace)
	}

	rec = doJSON(t, h, http.MethodGet, "/api/v1/queries/slow", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("slow endpoint status %d: %s", rec.Code, rec.Body.String())
	}
	var slow SlowQueriesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatalf("decode slow response %q: %v", rec.Body.String(), err)
	}
	if slow.ThresholdMS != 0 || slow.Total != 1 || len(slow.Entries) != 1 {
		t.Fatalf("slow response = %+v, want 1 entry at threshold 0", slow)
	}

	rec = doJSON(t, h, http.MethodPost, "/api/v1/queries/slow", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST to slow endpoint = %d, want 405", rec.Code)
	}
}

// TestStatsSchemaStableWhenIdle: /api/v1/stats must emit every
// subsystem block, zero-valued, before any query or ingest runs — and
// the new build block must name the runtime.
func TestStatsSchemaStableWhenIdle(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	b, err := json.Marshal(svc.DatasetStats("idle"))
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(b, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"dataset", "service", "store", "scan_cache", "scan",
		"durable", "storage", "prepared", "ingest", "watch", "build",
	} {
		if _, ok := top[key]; !ok {
			t.Errorf("idle stats missing %q block; keys=%v", key, keys(top))
		}
	}
	var build obs.BuildInfo
	if err := json.Unmarshal(top["build"], &build); err != nil {
		t.Fatal(err)
	}
	if build.Version == "" || build.GoVersion == "" {
		t.Errorf("build block incomplete: %+v", build)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
