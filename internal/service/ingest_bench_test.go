package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/experiments"
)

// The live-ingestion benchmarks quantify the standing-query contract on
// the paper's Fig4 50k-event dataset: after a small ingest, incremental
// re-evaluation (delta state + segment scan cache, sealed history
// served as cache hits) must beat re-executing the query from scratch
// by a wide margin (target >= 5x), because it scans only the fresh
// tail. `make bench-ingest` renders these into BENCH_ingest.json.

// standingQuery watches for powershell exfiltration on the host under
// investigation (the demo-apt DB server), Fig4 Query-2 shape.
const standingQuery = `agentid = 2
proc p["%powershell.exe"] read file f as evt
return distinct p, f`

// liveRecord fabricates one fresh matching event whose subject replays
// the already-interned demo-apt powershell entity — the realistic case
// where a live agent reports more activity by known entities, and the
// scan-cache fingerprint (which includes resolved entity sets) stays
// stable across evaluations.
func liveRecord(i int) aiql.Record {
	return aiql.Record{
		AgentID: 2,
		Subject: aiql.Process{PID: 2240, ExeName: "powershell.exe",
			Path: `C:\Windows\System32\WindowsPowerShell\powershell.exe`, User: "dbadmin"},
		Op:      aiql.OpRead,
		ObjType: aiql.EntityFile,
		ObjFile: aiql.File{Path: fmt.Sprintf(`C:\secret\live%d.txt`, i)},
		StartTS: int64(1525956000)*int64(time.Second) + int64(i),
		EndTS:   int64(1525956000)*int64(time.Second) + int64(i),
	}
}

func benchFig4DB(b *testing.B, scanCache bool) *aiql.DB {
	b.Helper()
	db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if scanCache {
		db.EnableSegmentScanCache(64 << 20)
	}
	return db
}

// BenchmarkStandingEvalFullRescan is the naive standing-query baseline:
// after each one-event append, re-execute the query from scratch over
// the whole store. Every evaluation pays the full 50k-event scan.
func BenchmarkStandingEvalFullRescan(b *testing.B) {
	db := benchFig4DB(b, false)
	stmt, err := db.Prepare(standingQuery)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := stmt.Exec(ctx, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer() // the commit is shared cost; time the evaluation strategy
		if err := db.AppendAll([]aiql.Record{liveRecord(i)}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := stmt.Exec(ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStandingEvalIncremental is the watch path: delta state plus
// the segment scan cache. After the registration baseline, each
// one-event append re-evaluates with sealed history as cache hits —
// only the fresh tail is scanned, and only never-seen rows surface.
func BenchmarkStandingEvalIncremental(b *testing.B) {
	db := benchFig4DB(b, true)
	stmt, err := db.Prepare(standingQuery)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	st := aiql.NewStandingState()
	if _, err := stmt.ExecDelta(ctx, nil, st); err != nil { // baseline warms the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer() // the commit is shared cost; time the evaluation strategy
		if err := db.AppendAll([]aiql.Record{liveRecord(i)}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d, err := stmt.ExecDelta(ctx, nil, st)
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Fresh) != 1 {
			b.Fatalf("iteration %d produced %d fresh rows, want 1", i, len(d.Fresh))
		}
	}
}

// BenchmarkIngestBatch measures acknowledged ingest throughput through
// the full service path — admission, group-committed AppendAll — with
// no standing queries registered.
func BenchmarkIngestBatch(b *testing.B) {
	svc := New(benchFig4DB(b, true), Config{IngestMaxRecords: -1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := make([]aiql.Record, 100)
		for j := range recs {
			recs[j] = liveRecord(i*100 + j)
		}
		if _, err := svc.Ingest(ctx, "agent", recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestBatchWatched is the same ingest with a registered
// standing query: each acknowledged batch includes the synchronous
// incremental re-evaluation and match push to one subscriber.
func BenchmarkIngestBatchWatched(b *testing.B) {
	svc := New(benchFig4DB(b, true), Config{IngestMaxRecords: -1})
	ctx := context.Background()
	info, err := svc.Watch(ctx, standingQuery, nil)
	if err != nil {
		b.Fatal(err)
	}
	sub, err := svc.Subscribe(info.WatchID)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Unsubscribe(info.WatchID, sub)
	go func() { // drain like a healthy SSE consumer
		for {
			select {
			case <-sub.Matches():
			case <-sub.Closed():
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := make([]aiql.Record, 100)
		for j := range recs {
			recs[j] = liveRecord(i*100 + j)
		}
		res, err := svc.Ingest(ctx, "agent", recs)
		if err != nil {
			b.Fatal(err)
		}
		if res.WatchesEvaluated != 1 {
			b.Fatalf("iteration %d evaluated %d watches", i, res.WatchesEvaluated)
		}
	}
}
