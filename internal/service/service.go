// Package service is the concurrent query service layer: it wraps an
// AIQL database so many simultaneous clients share one execution path
// with admission control, per-query deadlines, and result caching.
//
// Attack investigation is interactive (paper §1): analysts iterate on
// queries, so the same query text recurs against an unchanged store —
// the LRU result cache serves those repeats from memory, keyed on the
// normalized query text plus the store's commit counter so any append
// invalidates by construction. Under overload a bounded worker pool plus
// a bounded admission queue sheds load explicitly (ErrOverloaded)
// instead of letting unbounded goroutine fan-out thrash the partition
// scanners, and every execution runs under a context deadline so a
// runaway query cannot pin a worker forever.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/engine"
)

// ErrOverloaded reports that the service shed the query: every worker is
// busy and the admission queue is full (or the query timed out waiting in
// it). Clients should back off and retry.
var ErrOverloaded = errors.New("service: overloaded, try again later")

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers caps concurrent query executions. Default: GOMAXPROCS.
	Workers int
	// QueueDepth caps queries waiting for a worker beyond Workers.
	// Default: 4×Workers.
	QueueDepth int
	// QueueWait bounds how long an admitted query may wait for a worker
	// before being shed with ErrOverloaded. Default: 2s.
	QueueWait time.Duration
	// DefaultTimeout bounds execution when the request names none.
	// Default: 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Default: 2m.
	MaxTimeout time.Duration
	// CacheEntries is the LRU result-cache capacity. Negative disables
	// caching. Default: 256.
	CacheEntries int
	// MaxRows caps rows returned to any client (the full row count is
	// still reported). Default: 5000.
	MaxRows int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 5000
	}
	return c
}

// Request is one query submission.
type Request struct {
	// Query is the AIQL query text.
	Query string
	// Limit caps returned rows; 0 means the service maximum. The limit
	// shapes the response only — TotalRows always reports the full count.
	Limit int
	// Timeout bounds execution; 0 means the service default. Values
	// above the service maximum are clamped.
	Timeout time.Duration
}

// Response is one query outcome.
type Response struct {
	Columns   []string
	Rows      [][]string // possibly limit-truncated; do not mutate (shared with the cache)
	TotalRows int
	Duration  time.Duration // service-observed latency, including queue wait
	Cached    bool
	Kind      string // query family: multievent, dependency, anomaly
	Stats     engine.ExecStats
}

// Stats are the service's monotonic counters plus instantaneous gauges.
type Stats struct {
	Queries      uint64 `json:"queries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Rejected     uint64 `json:"rejected"`
	Timeouts     uint64 `json:"timeouts"`
	Canceled     uint64 `json:"canceled"`
	Errors       uint64 `json:"errors"`
	Active       int64  `json:"active"`
	Queued       int64  `json:"queued"`
	CacheEntries int    `json:"cache_entries"`
}

// Service executes queries for many concurrent clients over one database.
type Service struct {
	db    *aiql.DB
	cfg   Config
	sem   chan struct{} // worker slots
	cache *resultCache

	queries     atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	rejected    atomic.Uint64
	timeouts    atomic.Uint64
	canceled    atomic.Uint64
	errors      atomic.Uint64
	active      atomic.Int64
	queued      atomic.Int64
}

// New creates a service over db.
func New(db *aiql.DB, cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		db:    db,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		cache: newResultCache(cfg.CacheEntries),
	}
}

// DB returns the wrapped database.
func (s *Service) DB() *aiql.DB { return s.db }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Queries:      s.queries.Load(),
		CacheHits:    s.cacheHits.Load(),
		CacheMisses:  s.cacheMisses.Load(),
		Rejected:     s.rejected.Load(),
		Timeouts:     s.timeouts.Load(),
		Canceled:     s.canceled.Load(),
		Errors:       s.errors.Load(),
		Active:       s.active.Load(),
		Queued:       s.queued.Load(),
		CacheEntries: s.cache.len(),
	}
}

// Do executes one query request: cache lookup, admission, bounded
// execution, cache fill. It is safe for arbitrary concurrent use.
func (s *Service) Do(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	s.queries.Add(1)

	norm := normalizeQuery(req.Query)
	// The commit counter is read before execution; the entry is only
	// stored if the counter is unchanged afterwards, so a cached result
	// always reflects exactly the store version its key names.
	commits := s.db.Store().Commits()
	key := cacheKey{query: norm, commits: commits}
	if entry, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		return s.shape(entry, req, start, true), nil
	}
	if s.cache != nil {
		s.cacheMisses.Add(1)
	}

	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	} else if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	execCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	kind, _ := aiql.QueryKind(req.Query)
	res, err := s.db.QueryContext(execCtx, req.Query)
	if err != nil {
		if ctxErr := execCtx.Err(); ctxErr != nil {
			// a deadline expiry is a timeout; a cancelled parent means
			// the client went away — count them apart so stats don't
			// suggest tuning timeouts against disconnects
			if errors.Is(ctxErr, context.Canceled) {
				s.canceled.Add(1)
			} else {
				s.timeouts.Add(1)
			}
			return nil, fmt.Errorf("service: query aborted after %s: %w", time.Since(start).Round(time.Millisecond), ctxErr)
		}
		s.errors.Add(1)
		return nil, err
	}

	entry := &cacheEntry{key: key, result: res, kind: kind}
	if s.db.Store().Commits() == commits {
		s.cache.put(entry)
	}
	return s.shape(entry, req, start, false), nil
}

// admit acquires a worker slot, queueing up to cfg.QueueDepth waiters for
// at most cfg.QueueWait.
func (s *Service) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	// all workers busy: join the bounded queue
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return ErrOverloaded
	}
	defer s.queued.Add(-1)
	wait := time.NewTimer(s.cfg.QueueWait)
	defer wait.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		// the client's own deadline or disconnect ended the wait —
		// the service did not shed it, so it is not a rejection
		if errors.Is(ctx.Err(), context.Canceled) {
			s.canceled.Add(1)
		} else {
			s.timeouts.Add(1)
		}
		return fmt.Errorf("service: cancelled while queued: %w", ctx.Err())
	case <-wait.C:
		s.rejected.Add(1)
		return ErrOverloaded
	}
}

// shape builds the per-request response view over a (possibly shared)
// cache entry, applying the row limit without mutating the entry.
func (s *Service) shape(entry *cacheEntry, req Request, start time.Time, cached bool) *Response {
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxRows {
		limit = s.cfg.MaxRows
	}
	rows := entry.result.Rows
	if len(rows) > limit {
		rows = rows[:limit]
	}
	return &Response{
		Columns:   entry.result.Columns,
		Rows:      rows,
		TotalRows: len(entry.result.Rows),
		Duration:  time.Since(start),
		Cached:    cached,
		Kind:      entry.kind,
		Stats:     entry.result.Stats,
	}
}
