// Package service is the concurrent query service layer: it wraps an
// AIQL database so many simultaneous clients share one execution path
// with admission control, per-query deadlines, and result caching.
//
// Attack investigation is interactive (paper §1): analysts iterate on
// queries, so the same query text recurs against an unchanged store —
// the LRU result cache serves those repeats from memory, keyed on the
// normalized query text plus the store's commit counter so any append
// invalidates by construction. Identical queries that miss concurrently
// are collapsed into one engine execution (singleflight), and cursor
// tokens page through a cached result's generation without re-executing.
// Under overload a bounded worker pool plus a bounded admission queue
// sheds load explicitly (ErrOverloaded) instead of letting unbounded
// goroutine fan-out thrash the partition scanners; a per-client
// in-flight cap (ErrClientThrottled) keeps one noisy client from
// monopolizing the pool; and every execution runs under a context
// deadline so a runaway query cannot pin a worker forever. Large
// results can alternatively stream row-by-row (DoStream) straight from
// the engine's cursor pipeline with bounded memory.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/workpool"
)

// ErrOverloaded reports that the service shed the query: every worker is
// busy and the admission queue is full (or the query timed out waiting in
// it). Clients should back off and retry.
var ErrOverloaded = errors.New("service: overloaded, try again later")

// ErrClientThrottled reports that one client has reached its share of
// concurrent executions; other clients' queries are still admitted. The
// client should back off and retry.
var ErrClientThrottled = errors.New("service: client exceeded its concurrent query share, try again later")

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers caps concurrent query executions. Default: GOMAXPROCS.
	Workers int
	// QueueDepth caps queries waiting for a worker beyond Workers.
	// Default: 4×Workers.
	QueueDepth int
	// QueueWait bounds how long an admitted query may wait for a worker
	// before being shed with ErrOverloaded. Default: 2s.
	QueueWait time.Duration
	// DefaultTimeout bounds execution when the request names none.
	// Default: 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Default: 2m.
	MaxTimeout time.Duration
	// CacheEntries is the LRU result-cache entry capacity. Negative
	// disables caching. Default: 256.
	CacheEntries int
	// MaxCacheBytes bounds the approximate memory footprint of cached
	// rows; the LRU evicts past whichever of the entry and byte bounds
	// is hit first. Negative removes the byte bound. Default: 64 MiB.
	MaxCacheBytes int64
	// ClientInflight caps concurrent executions per client key
	// (Request.Client); requests beyond the cap are rejected with
	// ErrClientThrottled so one noisy client cannot monopolize the
	// worker pool. Requests with an empty client key are exempt.
	// Negative disables the cap. Default: half the workers (at least 1).
	ClientInflight int
	// MaxRows caps rows returned per buffered response (the full row
	// count is still reported; pagination reaches the rest). Streams
	// are bounded only by their own limit. Default: 5000.
	MaxRows int
	// PreparedEntries caps the prepared-statement registry (LRU).
	// Negative disables prepared statements. Default: 256.
	PreparedEntries int
	// PreparedTTL expires statements idle longer than this; each
	// lookup refreshes the clock. Negative disables expiry.
	// Default: 15m.
	PreparedTTL time.Duration
	// IngestMaxRecords caps events per ingest request; oversized
	// batches are rejected before any append. Negative disables the
	// cap. Default: 10000.
	IngestMaxRecords int
	// IngestMaxBytes caps an ingest request body. Default: 8 MiB.
	IngestMaxBytes int64
	// MaxWatches caps registered standing queries per dataset.
	// Negative disables standing queries entirely. Default: 64.
	MaxWatches int
	// WatchBuffer is each SSE subscriber's buffered match capacity;
	// a full buffer drops its oldest match (drop-oldest backpressure)
	// so a slow consumer sees the freshest matches, never a stalled
	// ingest path. Default: 256.
	WatchBuffer int
	// Dataset names the dataset this service fronts; it labels the
	// service's metric series and slow-query entries. Empty emits
	// unlabeled series.
	Dataset string
	// Metrics, when set, receives the service's per-query instruments
	// (latency histogram, scanned-events counter). Nil disables them.
	Metrics *obs.Registry
	// SlowLog, when set, records every execution at or above its
	// threshold. Nil disables slow-query logging.
	SlowLog *obs.SlowLog
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxCacheBytes == 0 {
		c.MaxCacheBytes = 64 << 20
	}
	if c.ClientInflight == 0 {
		c.ClientInflight = (c.Workers + 1) / 2
		if c.ClientInflight < 1 {
			c.ClientInflight = 1
		}
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 5000
	}
	if c.PreparedEntries == 0 {
		c.PreparedEntries = 256
	}
	if c.PreparedTTL == 0 {
		c.PreparedTTL = 15 * time.Minute
	}
	if c.IngestMaxRecords == 0 {
		c.IngestMaxRecords = 10000
	}
	if c.IngestMaxBytes <= 0 {
		c.IngestMaxBytes = 8 << 20
	}
	if c.MaxWatches == 0 {
		c.MaxWatches = 64
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 256
	}
	return c
}

// Request is one query submission.
type Request struct {
	// Query is the AIQL query text. It may contain `$name` parameters
	// when Params supplies their bindings; the template is compiled
	// once per submission (use StmtID to compile once per session).
	Query string
	// StmtID executes a statement registered via Prepare instead of
	// inline query text; Params supplies the bindings.
	StmtID string
	// Params binds the statement's `$name` parameters for this
	// execution.
	Params map[string]any
	// Limit caps returned rows (the page size under pagination); 0 means
	// the service maximum. The limit shapes the response only —
	// TotalRows always reports the full count.
	Limit int
	// Cursor resumes pagination: an opaque token from a previous
	// response's NextCursor. The page is served from the same store
	// generation the first page was computed over.
	Cursor string
	// Client identifies the caller for per-client fairness accounting
	// (an API key header, a remote address). Empty skips the accounting.
	Client string
	// Timeout bounds execution; 0 means the service default. Values
	// above the service maximum are clamped.
	Timeout time.Duration
	// Explain requests the scheduled execution plan (pattern order and
	// pruning-power estimates) instead of executing the query: the
	// response carries Plan and no rows.
	Explain bool
	// Trace requests the execution's span tree (EXPLAIN ANALYZE style):
	// the response carries Trace alongside the rows. A traced request
	// bypasses the result-cache lookup so the spans describe a real
	// execution, though its result still fills the cache.
	Trace bool
	// Sorted asks DoStream for rows in the canonical result order
	// (engine.RowLess) instead of production order. A sorted stream is
	// served from the buffered execution path — the full result
	// materializes (and fills the result cache) before the first row —
	// so it trades first-row latency for a deterministic order. This is
	// the wire contract shard coordinators rely on: sorted member
	// streams merge into a result byte-identical to unsharded
	// execution.
	Sorted bool
	// RequireAll fails a query over a sharded dataset when any member
	// is unreachable, instead of degrading to partial results with
	// shard_unavailable warnings. Ignored on unsharded datasets.
	RequireAll bool
}

// Response is one query outcome.
type Response struct {
	Columns   []string
	Rows      [][]string // one page; do not mutate (shared with the cache)
	TotalRows int
	// Offset is the index of the first returned row within the full
	// result.
	Offset int
	// NextCursor pages to the rows after this response; empty when the
	// result is exhausted.
	NextCursor string
	Duration   time.Duration // service-observed latency, including queue wait
	Cached     bool
	Kind       string // query family: multievent, dependency, anomaly
	Stats      engine.ExecStats
	// Plan is the scheduled pattern order with estimates, set only for
	// explain requests (which carry no rows).
	Plan []engine.ExplainEntry
	// Trace is the execution's span tree, set only when the request
	// asked for it (Request.Trace).
	Trace *obs.SpanNode
	// Partial marks a scatter-gathered result some members could not
	// contribute to; Warnings names them. Partial results are never
	// cached and never paginate (NextCursor stays empty) — a later page
	// could silently mix member availability.
	Partial  bool
	Warnings []ShardWarning
}

// Stats are the service's monotonic counters plus instantaneous gauges.
type Stats struct {
	Queries      uint64 `json:"queries"`
	Executions   uint64 `json:"executions"` // engine executions actually started
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	Coalesced    uint64 `json:"coalesced"` // misses served by an identical in-flight execution
	Rejected     uint64 `json:"rejected"`
	Throttled    uint64 `json:"throttled"` // per-client fairness rejections
	Timeouts     uint64 `json:"timeouts"`
	Canceled     uint64 `json:"canceled"`
	Errors       uint64 `json:"errors"`
	RowsStreamed uint64 `json:"rows_streamed"` // rows delivered through DoStream
	// ScannedEvents sums events touched by pattern scans across fresh
	// executions (cache hits and coalesced followers re-report the
	// leader's work and are not re-counted).
	ScannedEvents uint64 `json:"scanned_events"`
	Active        int64  `json:"active"`
	Queued        int64  `json:"queued"`
	CacheEntries  int    `json:"cache_entries"`
	CacheBytes    int64  `json:"cache_bytes"`
}

// StoreStats is the wire form of one dataset's storage figures,
// including the LSM segment layout.
type StoreStats struct {
	Events         int    `json:"events"`
	Partitions     int    `json:"partitions"`
	Segments       int    `json:"segments"`
	SealedEvents   int    `json:"sealed_events"`
	SealedBytes    uint64 `json:"sealed_bytes"`
	MemtableEvents int    `json:"memtable_events"`
	MemtableBytes  uint64 `json:"memtable_bytes"`
	Processes      int    `json:"processes"`
	Files          int    `json:"files"`
	Netconns       int    `json:"netconns"`
	ApproxBytes    uint64 `json:"approx_bytes"`
}

// DatasetStats is one dataset's full statistics blob: the service's
// counters plus the store's segment layout, the engine's segment
// scan-cache figures, and the durable subsystem's disk/WAL/compaction
// figures. Every dataset served by a catalog has its own independent
// instance of all of them.
type DatasetStats struct {
	Dataset   string                `json:"dataset,omitempty"`
	Default   bool                  `json:"default,omitempty"`
	Service   Stats                 `json:"service"`
	Store     StoreStats            `json:"store"`
	ScanCache engine.ScanCacheStats `json:"scan_cache"`
	// Scan reports the parallel-scan worker pool. The pool is normally
	// shared process-wide (one cap across all datasets), so the figures
	// are global, repeated per dataset for convenience.
	Scan     workpool.Stats          `json:"scan"`
	Durable  eventstore.DurableStats `json:"durable"`
	Storage  eventstore.StorageStats `json:"storage"`
	Prepared PreparedStats           `json:"prepared"`
	Ingest   IngestStats             `json:"ingest"`
	Watch    WatchStats              `json:"watch"`
	Build    obs.BuildInfo           `json:"build"`
	// Shards reports the coordinator's fan-out counters; nil on
	// unsharded datasets.
	Shards *ShardStats `json:"shards,omitempty"`
}

// DatasetStats snapshots the service's counters together with its
// dataset's storage and reuse figures.
func (s *Service) DatasetStats(name string) DatasetStats {
	dbStats := s.db.Stats()
	seg := s.db.SegmentStats()
	return DatasetStats{
		Dataset: name,
		Service: s.Stats(),
		Store: StoreStats{
			Events:         dbStats.Events,
			Partitions:     dbStats.Partitions,
			Segments:       seg.Segments,
			SealedEvents:   seg.SealedEvents,
			SealedBytes:    seg.SealedBytes,
			MemtableEvents: seg.MemtableEvents,
			MemtableBytes:  seg.MemtableBytes,
			Processes:      dbStats.Processes,
			Files:          dbStats.Files,
			Netconns:       dbStats.Netconns,
			ApproxBytes:    dbStats.Bytes,
		},
		ScanCache: s.db.ScanCacheStats(),
		Scan:      s.db.ScanPoolStats(),
		Durable:   s.db.DurableStats(),
		Storage:   s.db.StorageStats(),
		Prepared:  s.PreparedStats(),
		Ingest:    s.IngestStats(),
		Watch:     s.WatchStats(),
		Build:     obs.Build(),
		Shards:    s.ShardStats(),
	}
}

// flight is one in-flight execution that identical concurrent requests
// latch onto instead of executing again.
type flight struct {
	done  chan struct{}
	entry *cacheEntry
	err   error
}

// Service executes queries for many concurrent clients over one database.
type Service struct {
	db *aiql.DB
	// shards, when set, makes this a coordinator: executions
	// scatter-gather across the backend's members and db serves
	// planning only (compile, validate, explain). Nil on ordinary
	// single-store services.
	shards   ShardBackend
	cfg      Config
	sem      chan struct{} // worker slots
	cache    *resultCache
	prepared *preparedRegistry
	watches  *watchRegistry

	flightMu sync.Mutex
	flights  map[cacheKey]*flight

	clientMu sync.Mutex
	clients  map[string]int // in-flight executions per client key

	queries       atomic.Uint64
	executions    atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	coalesced     atomic.Uint64
	rejected      atomic.Uint64
	throttled     atomic.Uint64
	timeouts      atomic.Uint64
	canceled      atomic.Uint64
	errors        atomic.Uint64
	rowsStreamed  atomic.Uint64
	scannedEvents atomic.Uint64
	active        atomic.Int64
	queued        atomic.Int64

	ingests        atomic.Uint64
	ingestEvents   atomic.Uint64
	ingestRejected atomic.Uint64

	// mDuration and mScanned are nil-safe obs instruments (no-ops when
	// Config.Metrics is unset); slow is the shared slow-query log.
	mDuration *obs.Histogram
	mScanned  *obs.Counter
	slow      *obs.SlowLog
}

// New creates a service over db.
func New(db *aiql.DB, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		db:       db,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		cache:    newResultCache(cfg.CacheEntries, cfg.MaxCacheBytes),
		prepared: newPreparedRegistry(cfg.PreparedEntries, cfg.PreparedTTL),
		watches:  newWatchRegistry(cfg.MaxWatches, cfg.WatchBuffer),
		flights:  map[cacheKey]*flight{},
		clients:  map[string]int{},
		slow:     cfg.SlowLog,
	}
	if cfg.Metrics != nil {
		var lbls []obs.Label
		if cfg.Dataset != "" {
			lbls = []obs.Label{{Name: "dataset", Value: cfg.Dataset}}
		}
		// Registration is get-or-create, so a dataset hot-swap building a
		// fresh service over the same registry reuses the live series and
		// the counters stay monotonic across swaps.
		s.mDuration = cfg.Metrics.MustHistogram("aiql_query_duration_seconds",
			"Query latency through the service layer, queue wait included.",
			obs.DefBuckets, lbls...)
		s.mScanned = cfg.Metrics.MustCounter("aiql_query_scanned_events_total",
			"Events touched by pattern scans across fresh executions.", lbls...)
	}
	return s
}

// NewSharded creates a coordinator service over a shard backend. The
// planning database (typically empty and in-memory) serves compilation
// only — statement preparation, binding validation, column/kind
// inference, explain plans — while every execution scatter-gathers
// across the backend's members. The result cache keys on the backend's
// Generation instead of a local commit counter; ingest and standing
// queries are rejected (writes belong to the members).
func NewSharded(planning *aiql.DB, shards ShardBackend, cfg Config) *Service {
	s := New(planning, cfg)
	s.shards = shards
	return s
}

// Sharded reports whether this service coordinates a sharded dataset.
func (s *Service) Sharded() bool { return s.shards != nil }

// ShardStats snapshots the shard coordinator's counters (nil when the
// service is not sharded).
func (s *Service) ShardStats() *ShardStats {
	if s.shards == nil {
		return nil
	}
	return s.shards.Stats()
}

// generation identifies the store version results are computed over —
// the unit of result-cache keying and cursor-chain pinning. Local
// services read the store's commit counter; coordinators ask the shard
// backend for the members' combined generation.
func (s *Service) generation() uint64 {
	if s.shards != nil {
		return s.shards.Generation()
	}
	return s.db.Store().Commits()
}

// SlowLog returns the slow-query log this service records into (nil
// when none is configured).
func (s *Service) SlowLog() *obs.SlowLog { return s.slow }

// DB returns the wrapped database.
func (s *Service) DB() *aiql.DB { return s.db }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Queries:       s.queries.Load(),
		Executions:    s.executions.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		Coalesced:     s.coalesced.Load(),
		Rejected:      s.rejected.Load(),
		Throttled:     s.throttled.Load(),
		Timeouts:      s.timeouts.Load(),
		Canceled:      s.canceled.Load(),
		Errors:        s.errors.Load(),
		RowsStreamed:  s.rowsStreamed.Load(),
		ScannedEvents: s.scannedEvents.Load(),
		Active:        s.active.Load(),
		Queued:        s.queued.Load(),
		CacheEntries:  s.cache.len(),
		CacheBytes:    s.cache.sizeBytes(),
	}
}

// execTarget is one request resolved to its executable form: either a
// prepared statement with bindings or inline query text, plus the
// canonical cache-key text. Prepared executions key on (template
// fingerprint, canonicalized bindings), so distinct bindings of one
// template share the compiled plan while caching results
// independently; inline text keys on its normalized form.
type execTarget struct {
	stmt     *aiql.Stmt
	params   aiql.Params
	query    string // inline text; empty when stmt is set
	keyQuery string
	kind     string
}

// resolveTarget maps a request to its executable: a registered
// statement (StmtID), an ad-hoc prepared template (inline text with
// Params), or plain query text. Bindings are validated here so
// unknown/missing/mistyped parameters fail before admission.
func (s *Service) resolveTarget(req Request) (*execTarget, error) {
	switch {
	case req.StmtID != "":
		stmt, err := s.prepared.get(req.StmtID, time.Now())
		if err != nil {
			return nil, err
		}
		params := aiql.Params(req.Params)
		if err := stmt.Check(params); err != nil {
			return nil, err
		}
		return &execTarget{stmt: stmt, params: params,
			keyQuery: stmtCacheKey(stmt, params), kind: stmt.Kind()}, nil
	case len(req.Params) > 0:
		stmt, err := s.db.Prepare(req.Query)
		if err != nil {
			return nil, err
		}
		params := aiql.Params(req.Params)
		if err := stmt.Check(params); err != nil {
			return nil, err
		}
		return &execTarget{stmt: stmt, params: params,
			keyQuery: stmtCacheKey(stmt, params), kind: stmt.Kind()}, nil
	default:
		return &execTarget{query: req.Query, keyQuery: normalizeQuery(req.Query)}, nil
	}
}

// run executes the resolved target under ctx.
func (t *execTarget) run(ctx context.Context, db *aiql.DB) (*engine.Result, error) {
	if t.stmt != nil {
		return t.stmt.Exec(ctx, t.params)
	}
	return db.QueryContext(ctx, t.query)
}

// Do executes one query request: statement/binding resolution, cursor
// resolution, cache lookup, per-client fairness, singleflight
// collapsing, admission, bounded execution, cache fill, page shaping.
// It is safe for arbitrary concurrent use.
func (s *Service) Do(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	s.queries.Add(1)

	target, err := s.resolveTarget(req)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}

	if req.Explain {
		// Planning only: estimates come from the store's indexes, no
		// pattern scan runs, so explain bypasses admission and caching.
		if target.stmt != nil {
			plan, err := target.stmt.Explain()
			if err != nil {
				s.errors.Add(1)
				return nil, err
			}
			return &Response{Plan: plan, Kind: target.kind, Duration: time.Since(start)}, nil
		}
		kind, _ := aiql.QueryKind(req.Query)
		plan, err := s.db.ExplainPlan(req.Query)
		if err != nil {
			s.errors.Add(1)
			return nil, err
		}
		return &Response{Plan: plan, Kind: kind, Duration: time.Since(start)}, nil
	}

	resp, err := s.doResolved(ctx, req, target, start)
	s.observe(req, target, start, resp, err)
	if resp != nil && !req.Trace {
		resp.Trace = nil
	}
	return resp, err
}

// doResolved is Do past target resolution: cursor resolution, cache
// lookup, singleflight, admission, execution, page shaping. Split out
// so Do can observe (metrics, slow log) every outcome in one place.
func (s *Service) doResolved(ctx context.Context, req Request, target *execTarget, start time.Time) (*Response, error) {
	norm := target.keyQuery
	offset := 0

	// The generation is read before execution; the entry is only
	// stored if it is unchanged afterwards, so a cached result always
	// reflects exactly the store version its key names.
	commits := s.generation()
	if req.Cursor != "" {
		qhash, tokCommits, tokOffset, err := decodeCursorToken(req.Cursor)
		if err != nil {
			return nil, err
		}
		if qhash != hashQuery(norm) {
			return nil, fmt.Errorf("%w: token belongs to a different query", ErrBadCursor)
		}
		offset = tokOffset
		// Pages are pinned to the generation named by the token: as long
		// as its entry is cached, every page of the chain is a slice of
		// one consistent snapshot, regardless of concurrent appends.
		if entry, ok := s.cache.get(cacheKey{query: norm, commits: tokCommits}); ok {
			s.cacheHits.Add(1)
			return s.shape(entry, req, start, true, offset), nil
		}
		if tokCommits != commits {
			// the snapshot is both evicted and superseded — recomputing
			// would silently page across generations
			return nil, ErrCursorExpired
		}
		// evicted but not superseded: re-execute at the same generation
	}
	key := cacheKey{query: norm, commits: commits}
	// A traced request skips the lookup (not the fill): the spans must
	// describe a real execution, EXPLAIN ANALYZE style.
	if !req.Trace {
		if entry, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			return s.shape(entry, req, start, true, offset), nil
		}
		if s.cache != nil {
			s.cacheMisses.Add(1)
		}
	}

	if err := s.acquireClient(req.Client); err != nil {
		return nil, err
	}
	defer s.releaseClient(req.Client)

	var (
		entry     *cacheEntry
		coalesced bool
		err       error
	)
	for attempt := 0; ; attempt++ {
		entry, coalesced, err = s.executeShared(ctx, req, target, key)
		// A follower inherits the leader's outcome. If the leader died of
		// its own context (client disconnect, shorter deadline) while this
		// request's context is still live, the failure says nothing about
		// this request — retry; the flight is gone, so a retry elects a
		// new leader (possibly this request) executing under its own
		// deadline.
		if err != nil && coalesced && ctx.Err() == nil && attempt < 3 &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		break
	}
	if err != nil {
		return nil, err
	}
	// A cursor chain must never mix store generations. The execute path
	// is only reached for a chain when the snapshot was evicted while the
	// store still matched the token; if an append landed during
	// re-execution the result may reflect the newer generation, so the
	// chain expires rather than serving it.
	if req.Cursor != "" && s.generation() != key.commits {
		return nil, ErrCursorExpired
	}
	return s.shape(entry, req, start, coalesced, offset), nil
}

// executeShared runs one execution per distinct cache key at a time:
// the first request becomes the leader and executes; identical
// concurrent requests wait for the leader's entry instead of executing
// again (singleflight). The reported bool is true for followers.
func (s *Service) executeShared(ctx context.Context, req Request, target *execTarget, key cacheKey) (*cacheEntry, bool, error) {
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-f.done:
			return f.entry, true, f.err
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.Canceled) {
				s.canceled.Add(1)
			} else {
				s.timeouts.Add(1)
			}
			return nil, true, fmt.Errorf("service: cancelled while awaiting identical in-flight query: %w", ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	f.entry, f.err = s.execute(ctx, req, target, key)
	// Order matters for the at-most-one-execution guarantee: the entry
	// is cached before the flight is removed, so a request arriving
	// after the flight is gone finds the cache filled. Partial results
	// (some shard member missing) are never cached — the member may be
	// back for the very next request.
	if f.err == nil && len(f.entry.warnings) == 0 && s.generation() == key.commits {
		s.cache.put(f.entry)
	}
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
	return f.entry, false, f.err
}

// execute admits and runs one query under its deadline.
func (s *Service) execute(ctx context.Context, req Request, target *execTarget, key cacheKey) (*cacheEntry, error) {
	start := time.Now()
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)

	execCtx, cancel := context.WithTimeout(ctx, s.timeout(req))
	defer cancel()

	s.executions.Add(1)
	kind := target.kind
	if kind == "" {
		kind, _ = aiql.QueryKind(req.Query)
	}
	// Every execution is traced — spans are a handful of timed nodes, so
	// the slow-query log always has the breakdown, not just when a
	// client thought to ask for one.
	tr := obs.NewTrace("query")
	var (
		res   *engine.Result
		warns []ShardWarning
		err   error
	)
	if s.shards != nil {
		var sq ShardQuery
		sq, err = s.shardQuery(req, target)
		if err != nil {
			s.errors.Add(1)
			return nil, err
		}
		res, warns, err = s.shards.Run(obs.WithSpan(execCtx, tr.Root()), sq)
		if kind == "" {
			kind = sq.Kind
		}
	} else {
		res, err = target.run(obs.WithSpan(execCtx, tr.Root()), s.db)
	}
	tr.Root().End()
	if err != nil {
		if ctxErr := execCtx.Err(); ctxErr != nil {
			// a deadline expiry is a timeout; a cancelled parent means
			// the client went away — count them apart so stats don't
			// suggest tuning timeouts against disconnects
			if errors.Is(ctxErr, context.Canceled) {
				s.canceled.Add(1)
			} else {
				s.timeouts.Add(1)
			}
			return nil, fmt.Errorf("service: query aborted after %s: %w", time.Since(start).Round(time.Millisecond), ctxErr)
		}
		s.errors.Add(1)
		return nil, err
	}
	return &cacheEntry{key: key, result: res, kind: kind, bytes: approxResultBytes(res), trace: tr.Tree(), warnings: warns}, nil
}

// shardQuery resolves a request to the form the shard backend fans
// out: template text plus raw bindings (members compile against their
// own stores), with the header and kind known from planning. Inline
// text without bindings is compiled here against the planning database
// so query errors surface as parse/semantic failures at the
// coordinator, never as member execution errors.
func (s *Service) shardQuery(req Request, target *execTarget) (ShardQuery, error) {
	stmt := target.stmt
	if stmt == nil {
		var err error
		if stmt, err = s.db.Prepare(target.query); err != nil {
			return ShardQuery{}, err
		}
	}
	// Limit stays zero here: the buffered path materializes the full
	// result (pages are slices of it), so nothing may be pushed down.
	// The streaming path sets its own limit before dispatch.
	return ShardQuery{
		Query:      stmt.Source(),
		Params:     target.params,
		Columns:    stmt.Columns(),
		Kind:       stmt.Kind(),
		Client:     req.Client,
		RequireAll: req.RequireAll,
	}, nil
}

func (s *Service) timeout(req Request) time.Duration {
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	} else if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// retryAfter derives the Retry-After hint (whole seconds) from live
// queue pressure: an idle queue suggests an immediate 1s retry, a full
// queue the whole QueueWait, scaling linearly between — so a fleet of
// shed clients spreads its retries proportionally to how far behind the
// service actually is instead of stampeding back after a fixed second.
func (s *Service) retryAfter() int {
	depth := s.queued.Load()
	if depth < 0 {
		depth = 0
	}
	secs := int((time.Duration(depth)*s.cfg.QueueWait/time.Duration(s.cfg.QueueDepth) + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shed wraps a rejection with the queue-derived backoff hint the HTTP
// layer turns into the Retry-After header.
func (s *Service) shed(err error) error {
	return &retryHintError{err: err, after: s.retryAfter()}
}

// acquireClient reserves one of the client's concurrent execution slots.
func (s *Service) acquireClient(client string) error {
	if client == "" || s.cfg.ClientInflight < 0 {
		return nil
	}
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if s.clients[client] >= s.cfg.ClientInflight {
		s.throttled.Add(1)
		return s.shed(ErrClientThrottled)
	}
	s.clients[client]++
	return nil
}

func (s *Service) releaseClient(client string) {
	if client == "" || s.cfg.ClientInflight < 0 {
		return
	}
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if s.clients[client]--; s.clients[client] <= 0 {
		delete(s.clients, client)
	}
}

// admit acquires a worker slot, queueing up to cfg.QueueDepth waiters for
// at most cfg.QueueWait.
func (s *Service) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	// all workers busy: join the bounded queue
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return s.shed(ErrOverloaded)
	}
	defer s.queued.Add(-1)
	wait := time.NewTimer(s.cfg.QueueWait)
	defer wait.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		// the client's own deadline or disconnect ended the wait —
		// the service did not shed it, so it is not a rejection
		if errors.Is(ctx.Err(), context.Canceled) {
			s.canceled.Add(1)
		} else {
			s.timeouts.Add(1)
		}
		return fmt.Errorf("service: cancelled while queued: %w", ctx.Err())
	case <-wait.C:
		s.rejected.Add(1)
		return s.shed(ErrOverloaded)
	}
}

// shape builds the per-request response view over a (possibly shared)
// cache entry, slicing the requested page without mutating the entry.
func (s *Service) shape(entry *cacheEntry, req Request, start time.Time, cached bool, offset int) *Response {
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxRows {
		limit = s.cfg.MaxRows
	}
	rows := entry.result.Rows
	total := len(rows)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	next := ""
	// Partial results never paginate: the entry is not cached, so a
	// follow-up page would re-execute under different member
	// availability and silently splice two different results.
	if end < total && len(entry.warnings) == 0 {
		next = encodeCursorToken(hashQuery(entry.key.query), entry.key.commits, end)
	}
	return &Response{
		Columns:    entry.result.Columns,
		Rows:       rows[offset:end],
		TotalRows:  total,
		Offset:     offset,
		NextCursor: next,
		Duration:   time.Since(start),
		Cached:     cached,
		Kind:       entry.kind,
		Stats:      entry.result.Stats,
		Trace:      entry.trace,
		Partial:    len(entry.warnings) > 0,
		Warnings:   entry.warnings,
	}
}

// observe feeds the per-query instruments with one request's outcome:
// the latency histogram (every request), the scanned-events counter
// (fresh executions only — cache hits and coalesced followers re-report
// the leader's work and must not re-count it), and the slow-query log.
func (s *Service) observe(req Request, target *execTarget, start time.Time, resp *Response, err error) {
	dur := time.Since(start)
	s.mDuration.Observe(dur.Seconds())

	var scanned int64
	rows, cached := 0, false
	var spans []obs.SpanSummary
	kind := target.kind
	if resp != nil {
		scanned, rows, cached = resp.Stats.ScannedEvents, resp.TotalRows, resp.Cached
		if !cached && scanned > 0 {
			s.mScanned.Add(uint64(scanned))
			s.scannedEvents.Add(uint64(scanned))
		}
		spans = obs.TopSpans(resp.Trace, 5)
		if resp.Kind != "" {
			kind = resp.Kind
		}
	}
	if s.slow == nil {
		return
	}
	qtxt := target.query
	if target.stmt != nil {
		qtxt = target.stmt.Source()
	}
	e := obs.SlowEntry{
		Time:          start,
		Dataset:       s.cfg.Dataset,
		Kind:          kind,
		Query:         normalizeQuery(qtxt),
		DurationMS:    float64(dur) / float64(time.Millisecond),
		Rows:          rows,
		ScannedEvents: scanned,
		Cached:        cached,
		Spans:         spans,
	}
	if len(target.params) > 0 {
		// fingerprint, not values: binding values may be sensitive
		e.Bindings = fmt.Sprintf("%016x", hashQuery(target.keyQuery))
	}
	if err != nil {
		e.Error = err.Error()
	}
	s.slow.Record(e)
}

// DoStream executes one query as a row stream: header receives the
// column header (with a flag for cache service) before any row, then
// row receives each projected row as the engine produces it — first
// rows arrive while later partitions are still being scanned. A
// positive limit is pushed down into the engine, so a small-limit
// stream terminates the scan early instead of draining the store; a
// zero limit streams the entire result with parallel partition scans —
// memory stays bounded either way, so MaxRows does not apply to
// streams. Cancelling ctx (a client disconnect) aborts the scan
// mid-flight, as does an error from either callback. Streamed rows
// arrive in production order and are not cached or coalesced —
// interactive repeats belong on Do. The returned Response reports the
// rows actually streamed in TotalRows.
func (s *Service) DoStream(ctx context.Context, req Request, header func(cols []string, cached bool) error, row func([]string) error) (*Response, error) {
	start := time.Now()
	s.queries.Add(1)

	target, err := s.resolveTarget(req)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}

	resp, err := s.doStreamResolved(ctx, req, target, start, header, row)
	s.observe(req, target, start, resp, err)
	if resp != nil && !req.Trace {
		resp.Trace = nil
	}
	return resp, err
}

// doStreamResolved is DoStream past target resolution. An execution cut
// short by its sink (the client disconnected mid-stream) still returns
// a Response — alongside the error — carrying the engine statistics of
// the work actually done, so observe records the aborted query's
// latency and scanned events instead of losing them.
func (s *Service) doStreamResolved(ctx context.Context, req Request, target *execTarget, start time.Time, header func(cols []string, cached bool) error, row func([]string) error) (*Response, error) {
	limit := req.Limit
	if limit < 0 {
		limit = 0
	}

	norm := target.keyQuery
	commits := s.generation()
	if !req.Trace {
		if entry, ok := s.cache.get(cacheKey{query: norm, commits: commits}); ok {
			s.cacheHits.Add(1)
			resp := &Response{
				Columns: entry.result.Columns,
				Cached:  true,
				Kind:    entry.kind,
				Stats:   entry.result.Stats,
				Trace:   entry.trace,
			}
			if err := header(entry.result.Columns, true); err != nil {
				s.canceled.Add(1) // a sink failure means the client went away
				resp.Duration = time.Since(start)
				return resp, err
			}
			rows := entry.result.Rows
			if limit > 0 && len(rows) > limit {
				rows = rows[:limit]
			}
			sent := 0
			for _, r := range rows {
				if err := row(r); err != nil {
					s.canceled.Add(1)
					resp.TotalRows = sent
					resp.Duration = time.Since(start)
					return resp, err
				}
				sent++
				s.rowsStreamed.Add(1)
			}
			resp.TotalRows = sent
			resp.Duration = time.Since(start)
			return resp, nil
		}
		if s.cache != nil {
			s.cacheMisses.Add(1)
		}
	}

	// Sorted streams and shard coordination leave the cursor pipeline:
	// a coordinator merge-streams its members, a member serves the
	// sorted order from the buffered execution path.
	if s.shards != nil {
		return s.doStreamSharded(ctx, req, target, start, header, row)
	}
	if req.Sorted {
		return s.doStreamSorted(ctx, req, target, start, header, row)
	}

	if err := s.acquireClient(req.Client); err != nil {
		return nil, err
	}
	defer s.releaseClient(req.Client)
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)

	execCtx, cancel := context.WithTimeout(ctx, s.timeout(req))
	defer cancel()

	s.executions.Add(1)
	kind := target.kind
	if kind == "" {
		kind, _ = aiql.QueryKind(req.Query)
	}
	tr := obs.NewTrace("query")
	runCtx := obs.WithSpan(execCtx, tr.Root())
	var (
		cur *aiql.Cursor
		err error
	)
	if target.stmt != nil {
		cur, err = target.stmt.ExecCursor(runCtx, target.params, aiql.CursorOptions{Limit: limit})
	} else {
		cur, err = s.db.QueryCursor(runCtx, req.Query, aiql.CursorOptions{Limit: limit})
	}
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	defer cur.Close()

	// finish closes the cursor first — Close blocks until in-flight
	// scans observe the abort — so the statistics and span tree are
	// final in the returned Response whether the stream completed,
	// failed, or was abandoned by its sink.
	finish := func(streamed int) *Response {
		cur.Close()
		tr.Root().End()
		return &Response{
			Columns:   cur.Columns(),
			TotalRows: streamed,
			Duration:  time.Since(start),
			Kind:      kind,
			Stats:     cur.Stats(),
			Trace:     tr.Tree(),
		}
	}

	if err := header(cur.Columns(), false); err != nil {
		s.canceled.Add(1) // a sink failure means the client went away
		return finish(0), err
	}
	streamed := 0
	for cur.Next() {
		if err := row(cur.Row()); err != nil {
			s.canceled.Add(1)
			return finish(streamed), err
		}
		streamed++
		s.rowsStreamed.Add(1)
	}
	if err := cur.Err(); err != nil {
		resp := finish(streamed)
		if ctxErr := execCtx.Err(); ctxErr != nil {
			if errors.Is(ctxErr, context.Canceled) {
				s.canceled.Add(1)
			} else {
				s.timeouts.Add(1)
			}
			return resp, fmt.Errorf("service: stream aborted after %s: %w", time.Since(start).Round(time.Millisecond), ctxErr)
		}
		s.errors.Add(1)
		return resp, err
	}
	return finish(streamed), nil
}

// doStreamSorted serves a stream in the canonical result order by
// executing through the buffered path — full materialization, cache
// fill, singleflight — and then walking the entry's rows. The limit
// truncates the walk, not the execution, so a repeat with a larger
// limit is a cache hit.
func (s *Service) doStreamSorted(ctx context.Context, req Request, target *execTarget, start time.Time, header func(cols []string, cached bool) error, row func([]string) error) (*Response, error) {
	if err := s.acquireClient(req.Client); err != nil {
		return nil, err
	}
	defer s.releaseClient(req.Client)

	key := cacheKey{query: target.keyQuery, commits: s.generation()}
	entry, coalesced, err := s.executeShared(ctx, req, target, key)
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Columns:  entry.result.Columns,
		Cached:   coalesced,
		Kind:     entry.kind,
		Stats:    entry.result.Stats,
		Trace:    entry.trace,
		Partial:  len(entry.warnings) > 0,
		Warnings: entry.warnings,
	}
	if err := header(entry.result.Columns, coalesced); err != nil {
		s.canceled.Add(1)
		resp.Duration = time.Since(start)
		return resp, err
	}
	rows := entry.result.Rows
	if req.Limit > 0 && len(rows) > req.Limit {
		rows = rows[:req.Limit]
	}
	sent := 0
	for _, r := range rows {
		if err := row(r); err != nil {
			s.canceled.Add(1)
			resp.TotalRows = sent
			resp.Duration = time.Since(start)
			return resp, err
		}
		sent++
		s.rowsStreamed.Add(1)
	}
	resp.TotalRows = sent
	resp.Duration = time.Since(start)
	return resp, nil
}

// doStreamSharded merge-streams a query across the shard backend's
// members: rows arrive in canonical order as members produce them, and
// a positive limit is pushed down so member streams terminate after the
// merged prefix. A member lost mid-stream surfaces as warnings on the
// returned Response (trailer material), not as an error, unless the
// request set RequireAll.
func (s *Service) doStreamSharded(ctx context.Context, req Request, target *execTarget, start time.Time, header func(cols []string, cached bool) error, row func([]string) error) (*Response, error) {
	if err := s.acquireClient(req.Client); err != nil {
		return nil, err
	}
	defer s.releaseClient(req.Client)
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)

	execCtx, cancel := context.WithTimeout(ctx, s.timeout(req))
	defer cancel()

	sq, err := s.shardQuery(req, target)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	if req.Limit > 0 {
		sq.Limit = req.Limit
	}

	s.executions.Add(1)
	tr := obs.NewTrace("query")
	streamed := 0
	sinkDead := false
	stats, warns, err := s.shards.RunStream(obs.WithSpan(execCtx, tr.Root()), sq,
		func(cols []string) error {
			if e := header(cols, false); e != nil {
				sinkDead = true
				return e
			}
			return nil
		},
		func(r []string) error {
			if e := row(r); e != nil {
				sinkDead = true
				return e
			}
			streamed++
			s.rowsStreamed.Add(1)
			return nil
		})
	tr.Root().End()
	resp := &Response{
		Columns:   sq.Columns,
		TotalRows: streamed,
		Duration:  time.Since(start),
		Kind:      sq.Kind,
		Stats:     stats,
		Trace:     tr.Tree(),
		Partial:   len(warns) > 0,
		Warnings:  warns,
	}
	if err != nil {
		if sinkDead {
			s.canceled.Add(1)
			return resp, err
		}
		if ctxErr := execCtx.Err(); ctxErr != nil {
			if errors.Is(ctxErr, context.Canceled) {
				s.canceled.Add(1)
			} else {
				s.timeouts.Add(1)
			}
			return resp, fmt.Errorf("service: stream aborted after %s: %w", time.Since(start).Round(time.Millisecond), ctxErr)
		}
		s.errors.Add(1)
		return resp, err
	}
	return resp, nil
}
