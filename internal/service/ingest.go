package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/sysmon"
)

// Live ingestion: POST /api/v1/ingest accepts NDJSON event records and
// routes them through the store's WAL/memtable commit path as one
// acknowledged batch — visible to queries and group-committed (one WAL
// fsync) when the call returns. Ingests pass through the same admission
// control as queries, so a monitoring firehose and interactive analysts
// share the worker pool under one shedding policy, and every committed
// batch triggers the standing-query registry's incremental evaluation.

// IngestStats are the service's ingestion counters.
type IngestStats struct {
	// Requests counts accepted ingest batches.
	Requests uint64 `json:"requests"`
	// Events counts events committed across all batches.
	Events uint64 `json:"events"`
	// Rejected counts batches refused before commit (admission,
	// validation, size caps, closed store).
	Rejected uint64 `json:"rejected"`
}

// IngestStats snapshots the ingestion counters.
func (s *Service) IngestStats() IngestStats {
	return IngestStats{
		Requests: s.ingests.Load(),
		Events:   s.ingestEvents.Load(),
		Rejected: s.ingestRejected.Load(),
	}
}

// WireProcess is the NDJSON form of a process entity.
type WireProcess struct {
	PID     uint32 `json:"pid"`
	ExeName string `json:"exe_name"`
	Path    string `json:"path,omitempty"`
	User    string `json:"user,omitempty"`
	CmdLine string `json:"cmdline,omitempty"`
}

// WireFile is the NDJSON form of a file entity.
type WireFile struct {
	Name  string `json:"name"`
	Owner string `json:"owner,omitempty"`
}

// WireNetconn is the NDJSON form of a network connection entity.
type WireNetconn struct {
	SrcIP    string `json:"src_ip,omitempty"`
	SrcPort  uint16 `json:"src_port,omitempty"`
	DstIP    string `json:"dst_ip"`
	DstPort  uint16 `json:"dst_port,omitempty"`
	Protocol string `json:"protocol,omitempty"`
}

// IngestRecord is one NDJSON line of an ingest request: an SVO event as
// a collection agent reports it. Exactly one of Process/File/Netconn
// must match the operation's object type; read and write are
// polymorphic, so they require an explicit ObjectType ("file" or
// "netconn") naming which object payload applies.
type IngestRecord struct {
	AgentID uint32      `json:"agentid"`
	Op      string      `json:"op"`
	Subject WireProcess `json:"subject"`
	// ObjectType disambiguates polymorphic operations (read/write);
	// for all others it is inferred from the operation.
	ObjectType string       `json:"object_type,omitempty"`
	Process    *WireProcess `json:"process,omitempty"`
	File       *WireFile    `json:"file,omitempty"`
	Netconn    *WireNetconn `json:"netconn,omitempty"`
	StartTS    int64        `json:"start_ts"`
	EndTS      int64        `json:"end_ts,omitempty"`
	Amount     uint64       `json:"amount,omitempty"`
}

// ingestErr raises a per-record validation failure carrying the 1-based
// record number, so an agent can pinpoint the bad line in its batch.
func ingestErr(line int, format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest,
		msg: fmt.Sprintf("ingest record %d: %s", line, fmt.Sprintf(format, args...))}
}

// toRecord validates one wire record into the store's append form.
func (ir *IngestRecord) toRecord(line int) (aiql.Record, error) {
	var rec aiql.Record
	op, ok := sysmon.ParseOperation(ir.Op)
	if !ok {
		return rec, ingestErr(line, "unknown op %q", ir.Op)
	}
	if ir.Subject.ExeName == "" {
		return rec, ingestErr(line, "subject.exe_name is required")
	}
	objType := op.ObjectType()
	if objType == sysmon.EntityInvalid {
		// polymorphic (read/write): the record must say which object
		// family it touches
		if ir.ObjectType == "" {
			return rec, ingestErr(line, "op %q is polymorphic; object_type (file|netconn) is required", ir.Op)
		}
		objType, ok = sysmon.ParseEntityType(ir.ObjectType)
		if !ok || objType == sysmon.EntityProcess {
			return rec, ingestErr(line, "op %q takes object_type file or netconn, got %q", ir.Op, ir.ObjectType)
		}
	} else if ir.ObjectType != "" {
		if t, ok := sysmon.ParseEntityType(ir.ObjectType); !ok || t != objType {
			return rec, ingestErr(line, "op %q takes a %s object, got object_type %q", ir.Op, objType, ir.ObjectType)
		}
	}
	rec.AgentID = ir.AgentID
	rec.Op = op
	rec.ObjType = objType
	rec.Subject = sysmon.Process{PID: ir.Subject.PID, ExeName: ir.Subject.ExeName,
		Path: ir.Subject.Path, User: ir.Subject.User, CmdLine: ir.Subject.CmdLine}
	switch objType {
	case sysmon.EntityProcess:
		if ir.Process == nil {
			return rec, ingestErr(line, "op %q requires a process object", ir.Op)
		}
		if ir.Process.ExeName == "" {
			return rec, ingestErr(line, "process.exe_name is required")
		}
		rec.ObjProc = sysmon.Process{PID: ir.Process.PID, ExeName: ir.Process.ExeName,
			Path: ir.Process.Path, User: ir.Process.User, CmdLine: ir.Process.CmdLine}
	case sysmon.EntityFile:
		if ir.File == nil {
			return rec, ingestErr(line, "op %q requires a file object", ir.Op)
		}
		if ir.File.Name == "" {
			return rec, ingestErr(line, "file.name is required")
		}
		rec.ObjFile = sysmon.File{Path: ir.File.Name, Owner: ir.File.Owner}
	case sysmon.EntityNetconn:
		if ir.Netconn == nil {
			return rec, ingestErr(line, "op %q requires a netconn object", ir.Op)
		}
		if ir.Netconn.DstIP == "" {
			return rec, ingestErr(line, "netconn.dst_ip is required")
		}
		rec.ObjConn = sysmon.Netconn{SrcIP: ir.Netconn.SrcIP, SrcPort: ir.Netconn.SrcPort,
			DstIP: ir.Netconn.DstIP, DstPort: ir.Netconn.DstPort, Protocol: ir.Netconn.Protocol}
	}
	if ir.StartTS == 0 {
		return rec, ingestErr(line, "start_ts is required (nanoseconds since epoch)")
	}
	rec.StartTS = ir.StartTS
	rec.EndTS = ir.EndTS
	if rec.EndTS == 0 {
		rec.EndTS = rec.StartTS
	}
	rec.Amount = ir.Amount
	return rec, nil
}

// IngestResult reports one committed batch.
type IngestResult struct {
	// Ingested is the number of events committed.
	Ingested int `json:"ingested"`
	// WatchesEvaluated is how many standing queries re-evaluated
	// against the fresh data before the ingest was acknowledged.
	WatchesEvaluated int `json:"watches_evaluated"`
	// NewMatches is the total fresh standing-query rows those
	// evaluations produced.
	NewMatches int `json:"new_matches"`
	// DurationMS is the service-observed latency, including queue wait
	// and standing-query evaluation.
	DurationMS float64 `json:"duration_ms"`
}

// Ingest commits one batch of validated records: admission control
// (shared worker pool, per-client fairness), a group-committed
// AppendAll, then incremental re-evaluation of every registered
// standing query. A batch racing a catalog hot-swap fails atomically
// with aiql.ErrClosed — the API's dataset_reloading — and the agent
// resends it against the swapped-in store.
func (s *Service) Ingest(ctx context.Context, client string, recs []aiql.Record) (*IngestResult, error) {
	start := time.Now()
	if s.shards != nil {
		s.ingestRejected.Add(1)
		return nil, &apiError{status: http.StatusBadRequest, code: CodeUnsupported,
			msg: "service: a sharded dataset is read-only at the coordinator; ingest to the member owning the partition"}
	}
	if s.cfg.IngestMaxRecords > 0 && len(recs) > s.cfg.IngestMaxRecords {
		s.ingestRejected.Add(1)
		return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: CodeTooLarge,
			msg: fmt.Sprintf("service: ingest batch of %d records exceeds the %d-record cap, split it", len(recs), s.cfg.IngestMaxRecords)}
	}
	if err := s.acquireClient(client); err != nil {
		s.ingestRejected.Add(1)
		return nil, err
	}
	defer s.releaseClient(client)
	if err := s.admit(ctx); err != nil {
		s.ingestRejected.Add(1)
		return nil, err
	}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)

	if err := s.db.AppendAll(recs); err != nil {
		s.ingestRejected.Add(1)
		return nil, err
	}
	s.ingests.Add(1)
	s.ingestEvents.Add(uint64(len(recs)))

	// Standing queries evaluate synchronously, inside the batch's
	// worker slot: by the time the agent gets its acknowledgement,
	// every subscriber has been offered the fresh matches. The segment
	// scan cache keeps this cheap — sealed history is a cache hit, only
	// the fresh tail is scanned.
	evaluated, fresh := s.evalWatches(ctx)
	return &IngestResult{
		Ingested:         len(recs),
		WatchesEvaluated: evaluated,
		NewMatches:       fresh,
		DurationMS:       float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}
