package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/experiments"
)

// ingestLine renders one valid NDJSON ingest record: worker.exe writing
// a unique file, so each line adds exactly one row to demoQuery.
func ingestLine(i int) string {
	return fmt.Sprintf(`{"agentid": %d, "op": "write", "object_type": "file", "subject": {"pid": 100, "exe_name": "worker.exe"}, "file": {"name": "C:\\live\\out%d.log"}, "start_ts": %d}`,
		1+i%4, i, int64(1000+i)*int64(time.Second))
}

func TestHTTPIngestCommitsAndQueries(t *testing.T) {
	svc := New(newTestDB(t, 20), Config{})
	h := svc.Handler()
	var body strings.Builder
	for i := 0; i < 5; i++ {
		body.WriteString(ingestLine(i) + "\n")
	}
	rec := doJSON(t, h, http.MethodPost, "/api/v1/ingest", body.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 5 {
		t.Errorf("ingested = %d, want 5", res.Ingested)
	}
	// the batch is visible to queries the moment the ingest returns
	qbody, _ := json.Marshal(QueryRequest{Query: demoQuery})
	q := doJSON(t, h, http.MethodPost, "/api/v1/query", string(qbody))
	if q.Code != http.StatusOK {
		t.Fatalf("post-ingest query: status %d: %s", q.Code, q.Body.String())
	}
	if out := decodeResult(t, q); out.TotalRows != 25 {
		t.Errorf("post-ingest rows = %d, want 25", out.TotalRows)
	}
	st := svc.IngestStats()
	if st.Requests != 1 || st.Events != 5 || st.Rejected != 0 {
		t.Errorf("ingest stats = %+v", st)
	}
	// stats endpoint carries the ingest section
	stats := doJSON(t, h, http.MethodGet, "/api/v1/stats", "")
	if !strings.Contains(stats.Body.String(), `"ingest"`) || !strings.Contains(stats.Body.String(), `"watch"`) {
		t.Errorf("stats body lacks ingest/watch sections: %s", stats.Body.String())
	}
}

func TestHTTPIngestValidation(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{IngestMaxRecords: 4})
	h := svc.Handler()
	cases := []struct {
		name, body string
		status     int
		code       string
		mention    string
	}{
		{"bad JSON", `{"agentid": `, http.StatusBadRequest, CodeBadRequest, "record 1"},
		{"unknown op", `{"op": "explode", "subject": {"exe_name": "a.exe"}, "start_ts": 1}`,
			http.StatusBadRequest, CodeBadRequest, "unknown op"},
		{"polymorphic without object_type", `{"op": "read", "subject": {"exe_name": "a.exe"}, "file": {"name": "f"}, "start_ts": 1}`,
			http.StatusBadRequest, CodeBadRequest, "object_type"},
		{"missing subject", `{"op": "write", "object_type": "file", "file": {"name": "f"}, "start_ts": 1}`,
			http.StatusBadRequest, CodeBadRequest, "exe_name"},
		{"missing object payload", `{"op": "connect", "subject": {"exe_name": "a.exe"}, "start_ts": 1}`,
			http.StatusBadRequest, CodeBadRequest, "netconn"},
		{"missing start_ts", ingestLine(0) + "\n" + `{"op": "write", "object_type": "file", "subject": {"exe_name": "a.exe"}, "file": {"name": "f"}}`,
			http.StatusBadRequest, CodeBadRequest, "record 2"},
		{"wrong object_type for op", `{"op": "start", "object_type": "file", "subject": {"exe_name": "a.exe"}, "process": {"exe_name": "b.exe"}, "start_ts": 1}`,
			http.StatusBadRequest, CodeBadRequest, "object_type"},
		{"empty body", "", http.StatusBadRequest, CodeBadRequest, "no records"},
		{"record cap", ingestLine(0) + "\n" + ingestLine(1) + "\n" + ingestLine(2) + "\n" + ingestLine(3) + "\n" + ingestLine(4),
			http.StatusRequestEntityTooLarge, CodeTooLarge, "cap"},
	}
	for _, tc := range cases {
		rec := doJSON(t, h, http.MethodPost, "/api/v1/ingest", tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		e := decodeError(t, rec)
		if e.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Code, tc.code)
		}
		if !strings.Contains(e.Error, tc.mention) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.mention)
		}
	}
	// nothing committed, every batch counted as rejected
	if n := svc.DB().Len(); n != 5 {
		t.Errorf("store grew to %d events, want the seed 5 — a rejected batch committed", n)
	}
	if st := svc.IngestStats(); st.Requests != 0 || st.Rejected == 0 {
		t.Errorf("ingest stats = %+v, want 0 accepted and > 0 rejected", st)
	}
	// method gate
	if rec := doJSON(t, h, http.MethodGet, "/api/v1/ingest", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest: status %d, want 405", rec.Code)
	}
}

func TestHTTPIngestBodyTooLarge(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{IngestMaxBytes: 256})
	var body strings.Builder
	for i := 0; i < 10; i++ {
		body.WriteString(ingestLine(i) + "\n")
	}
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/ingest", body.String())
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != CodeTooLarge {
		t.Errorf("code %q, want %q", e.Code, CodeTooLarge)
	}
}

// TestHTTPIngestClosedStore: a batch racing a dataset teardown fails
// with 503 dataset_reloading + Retry-After, the signal that the agent
// should resend against the swapped-in store.
func TestHTTPIngestClosedStore(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	if err := svc.DB().Close(); err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/ingest", ingestLine(0))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != CodeDatasetReloading {
		t.Errorf("code %q, want %q", e.Code, CodeDatasetReloading)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 dataset_reloading without Retry-After")
	}
}

// TestRetryAfterProportional: the Retry-After hint scales with live
// queue pressure instead of the old hardcoded "1" — a full queue tells
// shed clients to stay away for the whole QueueWait.
func TestRetryAfterProportional(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{Workers: 1, QueueDepth: 4, QueueWait: 20 * time.Second, CacheEntries: -1})
	svc.sem <- struct{}{} // jam the only worker
	defer func() { <-svc.sem }()
	svc.queued.Add(4) // report a full queue
	defer svc.queued.Add(-4)
	for _, ep := range []struct{ path, body string }{
		{"/api/v1/query", `{"query": "proc p write file f as evt return p, f"}`},
		{"/api/v1/ingest", ingestLine(0)},
	} {
		rec := doJSON(t, svc.Handler(), http.MethodPost, ep.path, ep.body)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503: %s", ep.path, rec.Code, rec.Body.String())
		}
		secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("%s: Retry-After %q is not an integer", ep.path, rec.Header().Get("Retry-After"))
		}
		// 4 queued x 20s / depth 4 = 20s; anything proportional (> 1s
		// floor) proves the hint is load-derived
		if secs != 20 {
			t.Errorf("%s: Retry-After = %d, want 20 (full queue x QueueWait)", ep.path, secs)
		}
	}
}

// TestRetryAfterIdleQueueFloor: with no queue pressure the hint stays
// at the 1-second floor.
func TestRetryAfterIdleQueueFloor(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{Workers: 1, QueueDepth: 8, QueueWait: 20 * time.Second, ClientInflight: 1, CacheEntries: -1})
	if err := svc.acquireClient("agent"); err != nil {
		t.Fatal(err)
	}
	defer svc.releaseClient("agent")
	err := svc.acquireClient("agent")
	if err == nil {
		t.Fatal("second acquire admitted past ClientInflight=1")
	}
	var hint *retryHintError
	if !errors.As(err, &hint) {
		t.Fatalf("throttle error %v carries no retry hint", err)
	}
	if hint.after != 1 {
		t.Errorf("idle-queue Retry-After = %d, want the 1s floor", hint.after)
	}
}

// registerWatch registers a standing query over the handler and returns
// its id.
func registerWatch(t *testing.T, h http.Handler, query string) string {
	t.Helper()
	body, _ := json.Marshal(WatchRequest{Query: query})
	rec := doJSON(t, h, http.MethodPost, "/api/v1/watch", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("watch registration: status %d: %s", rec.Code, rec.Body.String())
	}
	var info WatchInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.WatchID == "" {
		t.Fatal("watch registration returned no watch_id")
	}
	return info.WatchID
}

// TestWatchLifecycleHTTP drives the registry end to end over the wire:
// register, list, describe, incremental matches after ingest, delete.
func TestWatchLifecycleHTTP(t *testing.T) {
	svc := New(newTestDB(t, 20), Config{})
	h := svc.Handler()
	id := registerWatch(t, h, demoQuery)

	// the registration baseline recorded the 20 existing rows without
	// pushing them
	info, err := svc.WatchInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Matches != 20 || info.Evals != 1 {
		t.Errorf("baseline info = %+v, want 20 matches across 1 eval", info)
	}
	if st := svc.WatchStats(); st.Matches != 0 {
		t.Errorf("baseline pushed %d matches, want 0 (baselines are recorded, not pushed)", st.Matches)
	}

	// GET /api/v1/watch lists it
	list := doJSON(t, h, http.MethodGet, "/api/v1/watch", "")
	var infos []WatchInfo
	if err := json.Unmarshal(list.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].WatchID != id {
		t.Fatalf("watch list = %+v", infos)
	}

	// an ingest of 3 fresh matching rows re-evaluates the watch
	rec := doJSON(t, h, http.MethodPost, "/api/v1/ingest",
		ingestLine(0)+"\n"+ingestLine(1)+"\n"+ingestLine(2))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %s", rec.Body.String())
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.WatchesEvaluated != 1 || res.NewMatches != 3 {
		t.Errorf("ingest result = %+v, want 1 watch evaluated, 3 new matches", res)
	}
	info, _ = svc.WatchInfo(id)
	if info.Matches != 23 || info.LastEval == nil || info.LastEval.FreshRows != 3 {
		t.Errorf("post-ingest info = %+v (last_eval %+v)", info, info.LastEval)
	}

	// a duplicate ingest of the same rows produces no fresh matches
	rec = doJSON(t, h, http.MethodPost, "/api/v1/ingest", ingestLine(0))
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.NewMatches != 0 {
		t.Errorf("replayed row reported %d new matches, want 0 (delta dedup)", res.NewMatches)
	}

	// GET {id} and DELETE {id}
	if rec := doJSON(t, h, http.MethodGet, "/api/v1/watch/"+id, ""); rec.Code != http.StatusOK {
		t.Errorf("GET watch: status %d", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodDelete, "/api/v1/watch/"+id, ""); rec.Code != http.StatusOK {
		t.Errorf("DELETE watch: status %d: %s", rec.Code, rec.Body.String())
	}
	rec = doJSON(t, h, http.MethodGet, "/api/v1/watch/"+id, "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("deleted watch: status %d, want 404", rec.Code)
	}
	if e := decodeError(t, rec); e.Code != CodeWatchNotFound {
		t.Errorf("deleted watch code = %q, want %q", e.Code, CodeWatchNotFound)
	}
}

func TestWatchLimitAndDisabled(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{MaxWatches: 1})
	h := svc.Handler()
	registerWatch(t, h, demoQuery)
	body, _ := json.Marshal(WatchRequest{Query: demoQuery})
	rec := doJSON(t, h, http.MethodPost, "/api/v1/watch", string(body))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit registration: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != CodeWatchLimit {
		t.Errorf("code %q, want %q", e.Code, CodeWatchLimit)
	}

	// a broken query never registers
	rec = doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/watch", `{"query": "this is not aiql"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad query registration: status %d, want 400", rec.Code)
	}

	disabled := New(newTestDB(t, 5), Config{MaxWatches: -1})
	rec = doJSON(t, disabled.Handler(), http.MethodPost, "/api/v1/watch", string(body))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("disabled registry: status %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the stream until one full event (or the comment
// preamble) arrives, a deadline guard against a silent stream.
func readSSE(t *testing.T, sc *bufio.Scanner) sseEvent {
	t.Helper()
	var ev sseEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "" && (ev.name != "" || ev.data != ""):
				return
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
		ev.name = "eof"
	}()
	select {
	case <-done:
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream produced no event within 10s")
		return ev
	}
}

// TestWatchSSEGolden is the wire-format acceptance test: a subscriber
// receives exactly the fresh post-registration matches as `match`
// events, and watch deletion ends the stream with a `close` event.
func TestWatchSSEGolden(t *testing.T) {
	svc := New(newTestDB(t, 20), Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	id := registerWatch(t, svc.Handler(), demoQuery)

	resp, err := http.Get(srv.URL + "/api/v1/watch/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	// wait for the subscription to attach before ingesting, otherwise
	// the match races the Subscribe call
	waitFor(t, func() bool {
		info, err := svc.WatchInfo(id)
		return err == nil && info.Subscribers == 1
	}, "subscriber attach")

	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/ingest", ingestLine(0)+"\n"+ingestLine(1))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %s", rec.Body.String())
	}

	ev := readSSE(t, sc)
	if ev.name != "match" {
		t.Fatalf("first event = %+v, want a match", ev)
	}
	var m WatchMatch
	if err := json.Unmarshal([]byte(ev.data), &m); err != nil {
		t.Fatalf("match data %q: %v", ev.data, err)
	}
	if m.WatchID != id || len(m.Rows) != 2 || m.TotalMatches != 22 {
		t.Errorf("match = %+v, want 2 fresh rows on top of the 20-row baseline", m)
	}
	if len(m.Columns) != 2 {
		t.Errorf("match columns = %v", m.Columns)
	}
	for _, row := range m.Rows {
		if !strings.Contains(strings.Join(row, " "), "worker.exe") {
			t.Errorf("match row %v does not carry the subject", row)
		}
	}

	// deleting the watch closes the stream with a close event, then EOF
	if rec := doJSON(t, svc.Handler(), http.MethodDelete, "/api/v1/watch/"+id, ""); rec.Code != http.StatusOK {
		t.Fatalf("DELETE: %s", rec.Body.String())
	}
	if ev := readSSE(t, sc); ev.name != "close" {
		t.Fatalf("post-delete event = %+v, want close", ev)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Errorf("stream did not end cleanly: %v", err)
	}
}

// TestWatchSSEDisconnectUnsubscribes: a client disconnect tears the
// subscription down server-side, so a gone consumer stops costing
// buffer space.
func TestWatchSSEDisconnectUnsubscribes(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	id := registerWatch(t, svc.Handler(), demoQuery)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/api/v1/watch/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, func() bool {
		info, err := svc.WatchInfo(id)
		return err == nil && info.Subscribers == 1
	}, "subscriber attach")

	cancel() // client goes away
	waitFor(t, func() bool {
		info, err := svc.WatchInfo(id)
		return err == nil && info.Subscribers == 0
	}, "disconnect-driven unsubscribe")

	// the watch itself survives and keeps evaluating
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/ingest", ingestLine(0))
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.WatchesEvaluated != 1 || res.NewMatches != 1 {
		t.Errorf("post-disconnect ingest = %+v", res)
	}

	// subscribing to an unknown watch is a clean 404
	bad, err := http.Get(srv.URL + "/api/v1/watch/watch_nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusNotFound {
		t.Errorf("unknown watch SSE: status %d, want 404", bad.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWatchSlowSubscriberDropsOldest: a stalled consumer loses its
// oldest matches, keeps the freshest, and never blocks the ingest path.
func TestWatchSlowSubscriberDropsOldest(t *testing.T) {
	svc := New(newTestDB(t, 0), Config{WatchBuffer: 2})
	h := svc.Handler()
	id := registerWatch(t, h, demoQuery)
	sub, err := svc.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Unsubscribe(id, sub)

	// 5 single-record ingests = 5 pushes into a 2-slot buffer nobody
	// drains; each must return promptly (drop-oldest, not block)
	for i := 0; i < 5; i++ {
		rec := doJSON(t, h, http.MethodPost, "/api/v1/ingest", ingestLine(i))
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest %d: %s", i, rec.Body.String())
		}
	}
	info, err := svc.WatchInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dropped != 3 {
		t.Errorf("dropped = %d, want 3 (5 pushes, 2 buffered)", info.Dropped)
	}
	if st := svc.WatchStats(); st.Dropped != 3 || st.Matches != 5 {
		t.Errorf("watch stats = %+v", st)
	}
	// the two freshest matches are still deliverable, oldest first
	got := []string{}
	for i := 0; i < 2; i++ {
		select {
		case m := <-sub.Matches():
			got = append(got, strings.Join(m.Rows[0], " "))
		default:
			t.Fatalf("buffer held %d matches, want 2", i)
		}
	}
	if !strings.Contains(got[0], "out3.log") || !strings.Contains(got[1], "out4.log") {
		t.Errorf("buffered matches = %v, want the freshest two (out3, out4)", got)
	}
}

// TestFig4StandingQueryDelta is the tentpole acceptance test: over the
// paper's 50k-event Fig4 dataset, a standing query re-evaluated after a
// small ingest serves all sealed history from the segment scan cache
// and scans only the fresh delta — and still pushes the new match.
func TestFig4StandingQueryDelta(t *testing.T) {
	db := aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
	if err := db.Flush(); err != nil { // seal everything so segment reuse applies
		t.Fatal(err)
	}
	db.EnableSegmentScanCache(64 << 20)
	svc := New(db, Config{})
	h := svc.Handler()
	total := db.Len()

	id := registerWatch(t, h, `agentid = 2
proc p["%powershell.exe"] read file f as evt
return distinct p, f`)
	sub, err := svc.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Unsubscribe(id, sub)

	baseline, err := svc.WatchInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.LastEval == nil || baseline.LastEval.SegmentMisses == 0 {
		t.Fatalf("baseline eval = %+v, want cold segment misses", baseline.LastEval)
	}

	// a small live batch: one fresh matching event among the 50k. The
	// subject replays an already-interned process entity (the demo-apt
	// powershell on the DB server), so the watch's resolved entity sets
	// — part of the scan-cache fingerprint — are unchanged and sealed
	// history stays a cache hit; only the new file entity and event are
	// fresh.
	line := `{"agentid": 2, "op": "read", "object_type": "file", "subject": {"pid": 2240, "exe_name": "powershell.exe", "path": "C:\\Windows\\System32\\WindowsPowerShell\\powershell.exe", "user": "dbadmin"}, "file": {"name": "C:\\secret\\exfil-live.txt"}, "start_ts": 1525956000000000999}`
	rec := doJSON(t, h, http.MethodPost, "/api/v1/ingest", line)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %s", rec.Body.String())
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.WatchesEvaluated != 1 || res.NewMatches != 1 {
		t.Fatalf("ingest result = %+v, want exactly the 1 fresh match", res)
	}

	info, err := svc.WatchInfo(id)
	if err != nil {
		t.Fatal(err)
	}
	le := info.LastEval
	if le == nil {
		t.Fatal("no last_eval recorded")
	}
	// the incremental contract: sealed history is cache hits, the scan
	// touches only the fresh tail — orders of magnitude below the store
	if le.SegmentHits == 0 {
		t.Errorf("re-evaluation had %d segment hits, want > 0 (sealed history cached)", le.SegmentHits)
	}
	if le.SegmentMisses != 0 {
		t.Errorf("re-evaluation missed %d segments, want 0 (baseline warmed the cache)", le.SegmentMisses)
	}
	if le.ScannedEvents <= 0 || le.ScannedEvents >= int64(total)/100 {
		t.Errorf("re-evaluation scanned %d of %d events, want only the fresh delta", le.ScannedEvents, total)
	}
	if le.FreshRows != 1 {
		t.Errorf("fresh rows = %d, want 1", le.FreshRows)
	}

	// the match reached the subscriber
	select {
	case m := <-sub.Matches():
		if len(m.Rows) != 1 || !strings.Contains(strings.Join(m.Rows[0], " "), "exfil-live.txt") {
			t.Errorf("pushed match = %+v", m)
		}
	default:
		t.Error("fresh match was not pushed to the subscriber")
	}

	// an ingest that cannot match pushes nothing but records the eval;
	// the cache stays warm so it is still delta-priced
	rec = doJSON(t, h, http.MethodPost, "/api/v1/ingest",
		`{"agentid": 9, "op": "write", "object_type": "file", "subject": {"exe_name": "idle.exe"}, "file": {"name": "C:\\tmp\\noise.log"}, "start_ts": 1525956000000001000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("noise ingest: %s", rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.NewMatches != 0 {
		t.Errorf("noise ingest produced %d matches", res.NewMatches)
	}
	info, _ = svc.WatchInfo(id)
	if info.LastEval.SegmentMisses != 0 {
		t.Errorf("noise re-evaluation missed %d segments, want 0", info.LastEval.SegmentMisses)
	}
}
