package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	aiql "github.com/aiql/aiql"
)

// QueryRequest is the wire form of one query submission.
type QueryRequest struct {
	// Query is the AIQL query text.
	Query string `json:"query"`
	// Dataset names the catalog dataset to query; empty selects the
	// default dataset.
	Dataset string `json:"dataset,omitempty"`
	// Limit caps returned rows per page; 0 means the service maximum.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes pagination with a token from a previous response's
	// next_cursor.
	Cursor string `json:"cursor,omitempty"`
	// TimeoutMS bounds execution in milliseconds; 0 means the service
	// default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Explain returns the scheduled pattern order and per-pattern
	// estimates instead of executing the query.
	Explain bool `json:"explain,omitempty"`
}

// PlanEntry is the wire form of one scheduled pattern in an explain
// response.
type PlanEntry struct {
	Alias    string `json:"alias"`
	Estimate int    `json:"estimate"`
}

// QueryResult is the wire form of one query outcome. Columns and Rows
// stay unconditionally present (clients index them without guards);
// only the explain/reuse extras are omitted when empty.
type QueryResult struct {
	Columns       []string    `json:"columns"`
	Rows          [][]string  `json:"rows"`
	TotalRows     int         `json:"total_rows"`
	Offset        int         `json:"offset"`
	NextCursor    string      `json:"next_cursor,omitempty"`
	DurationMS    float64     `json:"duration_ms"`
	Cached        bool        `json:"cached"`
	Kind          string      `json:"kind,omitempty"`
	ScannedEvents int64       `json:"scanned_events"`
	SegmentHits   int         `json:"segment_hits,omitempty"`
	SegmentMisses int         `json:"segment_misses,omitempty"`
	PatternOrder  []string    `json:"pattern_order,omitempty"`
	Plan          []PlanEntry `json:"plan,omitempty"`
}

// StreamHeader is the first NDJSON line of a streaming response.
type StreamHeader struct {
	Columns []string `json:"columns"`
	Cached  bool     `json:"cached,omitempty"`
}

// StreamTrailer is the last NDJSON line of a streaming response.
type StreamTrailer struct {
	Done          bool    `json:"done"`
	Rows          int     `json:"rows"`
	DurationMS    float64 `json:"duration_ms"`
	ScannedEvents int64   `json:"scanned_events"`
	Error         string  `json:"error,omitempty"`
}

// ErrorResponse is the wire form of any failure.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxRequestBody caps request bodies: queries are human-written text, so
// anything beyond this is abuse, and the cap keeps oversized bodies from
// buffering into memory before admission control can reject the query.
const maxRequestBody = 1 << 20

// CheckRequest and CheckResponse are the wire forms of syntax checking.
type CheckRequest struct {
	Query string `json:"query"`
}

// CheckResponse reports validation outcome without executing.
type CheckResponse struct {
	OK    bool   `json:"ok"`
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
}

// clientKeyHeader lets API clients identify themselves for fairness
// accounting; without it the remote address is the client key.
const clientKeyHeader = "X-Client-Id"

// clientKey derives the per-client fairness key for a request.
func clientKey(r *http.Request) string {
	if k := r.Header.Get(clientKeyHeader); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// Resolver maps a request's dataset name to the service owning it; the
// empty name selects the default dataset. Implementations must be safe
// for concurrent use — the catalog's resolver returns the service bound
// to the dataset's current store, so a hot-swap redirects new requests
// while in-flight queries finish on the service they started with.
type Resolver interface {
	Resolve(dataset string) (*Service, error)
}

// ErrUnknownDataset reports a dataset name the resolver does not serve.
var ErrUnknownDataset = errors.New("service: unknown dataset")

// selfResolver serves every dataset name's empty value from one fixed
// service (single-dataset deployments and tests).
type selfResolver struct{ s *Service }

func (r selfResolver) Resolve(dataset string) (*Service, error) {
	if dataset != "" {
		return nil, fmt.Errorf("%w: %q (single-dataset server)", ErrUnknownDataset, dataset)
	}
	return r.s, nil
}

// Handler returns the versioned JSON API over this single service; see
// NewHandler.
func (s *Service) Handler() http.Handler {
	return NewHandler(selfResolver{s})
}

// NewHandler returns the versioned JSON API, routing each request to
// the service its `dataset` field names:
//
//	POST /api/v1/query         QueryRequest → QueryResult | ErrorResponse
//	POST /api/v1/query/stream  QueryRequest → NDJSON stream
//	POST /api/v1/check         CheckRequest → CheckResponse
//	GET  /api/v1/stats[?dataset=name]       → DatasetStats
//
// The buffered endpoint pages large results: pass `limit` as the page
// size and follow `next_cursor` until it is empty; every page of one
// cursor chain is served from the same store snapshot. Passing
// `"explain": true` returns the scheduled pattern order and estimates
// (`plan`) without executing. The stream endpoint emits NDJSON — a
// StreamHeader line, one JSON array per row as the engine produces it,
// and a StreamTrailer line — flushing as rows arrive, and aborts the
// scan when the client disconnects.
//
// Failures map to status codes: 400 for malformed JSON, malformed
// cursors, and query parse/validation/execution errors, 404 for unknown
// datasets, 410 for expired cursors, 429 for per-client throttling
// (with Retry-After), 504 for deadline-exceeded, 503 for admission
// rejections (with Retry-After), 405 for wrong methods.
func NewHandler(r Resolver) http.Handler {
	h := &apiHandler{resolve: r}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/query", h.handleQuery)
	mux.HandleFunc("/api/v1/query/stream", h.handleQueryStream)
	mux.HandleFunc("/api/v1/check", h.handleCheck)
	mux.HandleFunc("/api/v1/stats", h.handleStats)
	return mux
}

// apiHandler binds the wire handlers to a dataset resolver.
type apiHandler struct {
	resolve Resolver
}

// resolveService maps the request's dataset to its service, writing the
// error response on failure.
func (h *apiHandler) resolveService(w http.ResponseWriter, dataset string) (*Service, bool) {
	svc, err := h.resolve.Resolve(dataset)
	if err != nil {
		writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error()})
		return nil, false
	}
	return svc, true
}

// decodeQuery parses the request body shared by the buffered and
// streaming endpoints, reporting (ok=false) after writing the error.
func decodeQuery(w http.ResponseWriter, r *http.Request) (QueryRequest, bool) {
	var req QueryRequest
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return req, false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return req, false
	}
	return req, true
}

func (h *apiHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQuery(w, r)
	if !ok {
		return
	}
	svc, ok := h.resolveService(w, req.Dataset)
	if !ok {
		return
	}
	resp, err := svc.Do(r.Context(), Request{
		Query:   req.Query,
		Limit:   req.Limit,
		Cursor:  req.Cursor,
		Client:  clientKey(r),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Explain: req.Explain,
	})
	if err != nil {
		writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error()})
		return
	}
	out := QueryResult{
		Columns:       resp.Columns,
		Rows:          resp.Rows,
		TotalRows:     resp.TotalRows,
		Offset:        resp.Offset,
		NextCursor:    resp.NextCursor,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		Cached:        resp.Cached,
		Kind:          resp.Kind,
		ScannedEvents: resp.Stats.ScannedEvents,
		SegmentHits:   resp.Stats.SegmentHits,
		SegmentMisses: resp.Stats.SegmentMisses,
		PatternOrder:  resp.Stats.PatternOrder,
	}
	for _, e := range resp.Plan {
		out.Plan = append(out.Plan, PlanEntry{Alias: e.Alias, Estimate: e.Estimate})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQueryStream serves one query as NDJSON, flushing rows as the
// engine produces them. The response is 200 once streaming starts;
// failures before the first byte use normal error statuses, failures
// mid-stream surface in the trailer.
func (h *apiHandler) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQuery(w, r)
	if !ok {
		return
	}
	if req.Explain {
		// a plan has no row stream; the buffered endpoint serves explain
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "explain is not supported on the stream endpoint; use POST /api/v1/query"})
		return
	}
	svc, ok := h.resolveService(w, req.Dataset)
	if !ok {
		return
	}
	var (
		enc     = json.NewEncoder(w)
		flush   func()
		started bool
	)
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	} else {
		flush = func() {}
	}
	resp, err := svc.DoStream(r.Context(), Request{
		Query:   req.Query,
		Limit:   req.Limit,
		Client:  clientKey(r),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	},
		func(cols []string, cached bool) error {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
			if err := enc.Encode(StreamHeader{Columns: cols, Cached: cached}); err != nil {
				return err
			}
			flush()
			return nil
		},
		func(row []string) error {
			if err := enc.Encode(row); err != nil {
				return err
			}
			flush()
			return nil
		})
	if err != nil {
		if !started {
			writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error()})
			return
		}
		// the stream is already 200 + partial rows: the trailer is the
		// only place left to report the failure
		if encErr := enc.Encode(StreamTrailer{Error: err.Error()}); encErr == nil {
			flush()
		}
		return
	}
	if encErr := enc.Encode(StreamTrailer{
		Done:          true,
		Rows:          resp.TotalRows,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		ScannedEvents: resp.Stats.ScannedEvents,
	}); encErr == nil {
		flush()
	}
}

func (h *apiHandler) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if err := aiql.Check(req.Query); err != nil {
		writeJSON(w, http.StatusOK, CheckResponse{Error: err.Error()})
		return
	}
	kind, _ := aiql.QueryKind(req.Query)
	writeJSON(w, http.StatusOK, CheckResponse{OK: true, Kind: kind})
}

// handleStats reports one dataset's full statistics: service counters,
// store segment layout, and segment scan-cache figures. The dataset is
// selected with the `dataset` query parameter; empty means the default.
func (h *apiHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	svc, ok := h.resolveService(w, name)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, svc.DatasetStats(name))
}

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClientThrottled):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCursorExpired):
		return http.StatusGone
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode: %v", err)
	}
}
