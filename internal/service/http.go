package service

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"time"

	aiql "github.com/aiql/aiql"
)

// QueryRequest is the wire form of one query submission.
type QueryRequest struct {
	// Query is the AIQL query text.
	Query string `json:"query"`
	// Limit caps returned rows; 0 means the service maximum.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS bounds execution in milliseconds; 0 means the service
	// default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryResult is the wire form of one query outcome.
type QueryResult struct {
	Columns       []string   `json:"columns"`
	Rows          [][]string `json:"rows"`
	TotalRows     int        `json:"total_rows"`
	DurationMS    float64    `json:"duration_ms"`
	Cached        bool       `json:"cached"`
	Kind          string     `json:"kind,omitempty"`
	ScannedEvents int64      `json:"scanned_events"`
	PatternOrder  []string   `json:"pattern_order,omitempty"`
}

// ErrorResponse is the wire form of any failure.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxRequestBody caps request bodies: queries are human-written text, so
// anything beyond this is abuse, and the cap keeps oversized bodies from
// buffering into memory before admission control can reject the query.
const maxRequestBody = 1 << 20

// CheckRequest and CheckResponse are the wire forms of syntax checking.
type CheckRequest struct {
	Query string `json:"query"`
}

// CheckResponse reports validation outcome without executing.
type CheckResponse struct {
	OK    bool   `json:"ok"`
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
}

// Handler returns the versioned JSON API:
//
//	POST /api/v1/query  QueryRequest  → QueryResult | ErrorResponse
//	POST /api/v1/check  CheckRequest  → CheckResponse
//	GET  /api/v1/stats                → Stats
//
// Failures map to status codes: 400 for malformed JSON and query
// parse/validation/execution errors, 504 for deadline-exceeded, 503 for
// admission rejections (with Retry-After), 405 for wrong methods.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/query", s.handleQuery)
	mux.HandleFunc("/api/v1/check", s.handleCheck)
	mux.HandleFunc("/api/v1/stats", s.handleStats)
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return
	}
	resp, err := s.Do(r.Context(), Request{
		Query:   req.Query,
		Limit:   req.Limit,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, QueryResult{
		Columns:       resp.Columns,
		Rows:          resp.Rows,
		TotalRows:     resp.TotalRows,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		Cached:        resp.Cached,
		Kind:          resp.Kind,
		ScannedEvents: resp.Stats.ScannedEvents,
		PatternOrder:  resp.Stats.PatternOrder,
	})
}

func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if err := aiql.Check(req.Query); err != nil {
		writeJSON(w, http.StatusOK, CheckResponse{Error: err.Error()})
		return
	}
	kind, _ := aiql.QueryKind(req.Query)
	writeJSON(w, http.StatusOK, CheckResponse{OK: true, Kind: kind})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode: %v", err)
	}
}
