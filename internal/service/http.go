package service

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	aiql "github.com/aiql/aiql"
)

// QueryRequest is the wire form of one query submission.
type QueryRequest struct {
	// Query is the AIQL query text.
	Query string `json:"query"`
	// Limit caps returned rows per page; 0 means the service maximum.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes pagination with a token from a previous response's
	// next_cursor.
	Cursor string `json:"cursor,omitempty"`
	// TimeoutMS bounds execution in milliseconds; 0 means the service
	// default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryResult is the wire form of one query outcome.
type QueryResult struct {
	Columns       []string   `json:"columns"`
	Rows          [][]string `json:"rows"`
	TotalRows     int        `json:"total_rows"`
	Offset        int        `json:"offset"`
	NextCursor    string     `json:"next_cursor,omitempty"`
	DurationMS    float64    `json:"duration_ms"`
	Cached        bool       `json:"cached"`
	Kind          string     `json:"kind,omitempty"`
	ScannedEvents int64      `json:"scanned_events"`
	PatternOrder  []string   `json:"pattern_order,omitempty"`
}

// StreamHeader is the first NDJSON line of a streaming response.
type StreamHeader struct {
	Columns []string `json:"columns"`
	Cached  bool     `json:"cached,omitempty"`
}

// StreamTrailer is the last NDJSON line of a streaming response.
type StreamTrailer struct {
	Done          bool    `json:"done"`
	Rows          int     `json:"rows"`
	DurationMS    float64 `json:"duration_ms"`
	ScannedEvents int64   `json:"scanned_events"`
	Error         string  `json:"error,omitempty"`
}

// ErrorResponse is the wire form of any failure.
type ErrorResponse struct {
	Error string `json:"error"`
}

// maxRequestBody caps request bodies: queries are human-written text, so
// anything beyond this is abuse, and the cap keeps oversized bodies from
// buffering into memory before admission control can reject the query.
const maxRequestBody = 1 << 20

// CheckRequest and CheckResponse are the wire forms of syntax checking.
type CheckRequest struct {
	Query string `json:"query"`
}

// CheckResponse reports validation outcome without executing.
type CheckResponse struct {
	OK    bool   `json:"ok"`
	Kind  string `json:"kind,omitempty"`
	Error string `json:"error,omitempty"`
}

// clientKeyHeader lets API clients identify themselves for fairness
// accounting; without it the remote address is the client key.
const clientKeyHeader = "X-Client-Id"

// clientKey derives the per-client fairness key for a request.
func clientKey(r *http.Request) string {
	if k := r.Header.Get(clientKeyHeader); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// Handler returns the versioned JSON API:
//
//	POST /api/v1/query         QueryRequest → QueryResult | ErrorResponse
//	POST /api/v1/query/stream  QueryRequest → NDJSON stream
//	POST /api/v1/check         CheckRequest → CheckResponse
//	GET  /api/v1/stats                      → Stats
//
// The buffered endpoint pages large results: pass `limit` as the page
// size and follow `next_cursor` until it is empty; every page of one
// cursor chain is served from the same store snapshot. The stream
// endpoint emits NDJSON — a StreamHeader line, one JSON array per row
// as the engine produces it, and a StreamTrailer line — flushing as
// rows arrive, and aborts the scan when the client disconnects.
//
// Failures map to status codes: 400 for malformed JSON, malformed
// cursors, and query parse/validation/execution errors, 410 for expired
// cursors, 429 for per-client throttling (with Retry-After), 504 for
// deadline-exceeded, 503 for admission rejections (with Retry-After),
// 405 for wrong methods.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/query", s.handleQuery)
	mux.HandleFunc("/api/v1/query/stream", s.handleQueryStream)
	mux.HandleFunc("/api/v1/check", s.handleCheck)
	mux.HandleFunc("/api/v1/stats", s.handleStats)
	return mux
}

// decodeQuery parses the request body shared by the buffered and
// streaming endpoints, reporting (ok=false) after writing the error.
func decodeQuery(w http.ResponseWriter, r *http.Request) (QueryRequest, bool) {
	var req QueryRequest
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return req, false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return req, false
	}
	return req, true
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQuery(w, r)
	if !ok {
		return
	}
	resp, err := s.Do(r.Context(), Request{
		Query:   req.Query,
		Limit:   req.Limit,
		Cursor:  req.Cursor,
		Client:  clientKey(r),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, QueryResult{
		Columns:       resp.Columns,
		Rows:          resp.Rows,
		TotalRows:     resp.TotalRows,
		Offset:        resp.Offset,
		NextCursor:    resp.NextCursor,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		Cached:        resp.Cached,
		Kind:          resp.Kind,
		ScannedEvents: resp.Stats.ScannedEvents,
		PatternOrder:  resp.Stats.PatternOrder,
	})
}

// handleQueryStream serves one query as NDJSON, flushing rows as the
// engine produces them. The response is 200 once streaming starts;
// failures before the first byte use normal error statuses, failures
// mid-stream surface in the trailer.
func (s *Service) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQuery(w, r)
	if !ok {
		return
	}
	var (
		enc     = json.NewEncoder(w)
		flush   func()
		started bool
	)
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	} else {
		flush = func() {}
	}
	resp, err := s.DoStream(r.Context(), Request{
		Query:   req.Query,
		Limit:   req.Limit,
		Client:  clientKey(r),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	},
		func(cols []string, cached bool) error {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
			if err := enc.Encode(StreamHeader{Columns: cols, Cached: cached}); err != nil {
				return err
			}
			flush()
			return nil
		},
		func(row []string) error {
			if err := enc.Encode(row); err != nil {
				return err
			}
			flush()
			return nil
		})
	if err != nil {
		if !started {
			writeJSON(w, statusFor(err), ErrorResponse{Error: err.Error()})
			return
		}
		// the stream is already 200 + partial rows: the trailer is the
		// only place left to report the failure
		if encErr := enc.Encode(StreamTrailer{Error: err.Error()}); encErr == nil {
			flush()
		}
		return
	}
	if encErr := enc.Encode(StreamTrailer{
		Done:          true,
		Rows:          resp.TotalRows,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		ScannedEvents: resp.Stats.ScannedEvents,
	}); encErr == nil {
		flush()
	}
}

func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req CheckRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if err := aiql.Check(req.Query); err != nil {
		writeJSON(w, http.StatusOK, CheckResponse{Error: err.Error()})
		return
	}
	kind, _ := aiql.QueryKind(req.Query)
	writeJSON(w, http.StatusOK, CheckResponse{OK: true, Kind: kind})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClientThrottled):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCursorExpired):
		return http.StatusGone
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(1))
	}
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode: %v", err)
	}
}
