package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/obs"
)

// QueryRequest is the wire form of one query submission: inline query
// text (optionally with params), or a prepared stmt_id with params.
type QueryRequest struct {
	// Query is the AIQL query text; it may contain `$name` parameters
	// bound by Params. Ignored when StmtID is set.
	Query string `json:"query,omitempty"`
	// StmtID executes a statement registered via POST /api/v1/prepare.
	StmtID string `json:"stmt_id,omitempty"`
	// Params binds the statement's `$name` parameters: name → value
	// (JSON strings for string/time parameters, numbers for number
	// parameters).
	Params map[string]any `json:"params,omitempty"`
	// Dataset names the catalog dataset to query; empty selects the
	// default dataset.
	Dataset string `json:"dataset,omitempty"`
	// Limit caps returned rows per page; 0 means the service maximum.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes pagination with a token from a previous response's
	// next_cursor.
	Cursor string `json:"cursor,omitempty"`
	// TimeoutMS bounds execution in milliseconds; 0 means the service
	// default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Explain returns the scheduled pattern order and per-pattern
	// estimates instead of executing the query.
	Explain bool `json:"explain,omitempty"`
	// Trace returns the execution's span tree alongside the rows
	// (EXPLAIN ANALYZE style); the request bypasses the result-cache
	// lookup so the spans describe a real execution.
	Trace bool `json:"trace,omitempty"`
	// Sorted asks the stream endpoint for rows in the canonical result
	// order (full materialization first) instead of production order.
	// Shard coordinators set it when fanning out to members so the
	// merged stream is deterministic.
	Sorted bool `json:"sorted,omitempty"`
	// RequireAll fails a sharded query when any member is unreachable
	// instead of returning partial results with warnings.
	RequireAll bool `json:"require_all,omitempty"`
}

// PrepareRequest is the wire form of a statement registration.
type PrepareRequest struct {
	// Query is the AIQL template, `$name` parameters in value
	// positions.
	Query string `json:"query"`
	// Dataset names the catalog dataset the statement binds to.
	Dataset string `json:"dataset,omitempty"`
}

// PrepareResponse describes the registered statement: the handle to
// execute by, the query family, and the inferred typed parameter
// signature.
type PrepareResponse struct {
	StmtID  string      `json:"stmt_id"`
	Kind    string      `json:"kind"`
	Params  []ParamInfo `json:"params"`
	Columns []string    `json:"columns,omitempty"`
}

// PlanEntry is the wire form of one scheduled pattern in an explain
// response.
type PlanEntry struct {
	Alias    string `json:"alias"`
	Estimate int    `json:"estimate"`
}

// QueryResult is the wire form of one query outcome. Columns and Rows
// stay unconditionally present (clients index them without guards);
// only the explain/reuse extras are omitted when empty.
type QueryResult struct {
	Columns       []string    `json:"columns"`
	Rows          [][]string  `json:"rows"`
	TotalRows     int         `json:"total_rows"`
	Offset        int         `json:"offset"`
	NextCursor    string      `json:"next_cursor,omitempty"`
	DurationMS    float64     `json:"duration_ms"`
	Cached        bool        `json:"cached"`
	Kind          string      `json:"kind,omitempty"`
	ScannedEvents int64       `json:"scanned_events"`
	SegmentHits   int         `json:"segment_hits,omitempty"`
	SegmentMisses int         `json:"segment_misses,omitempty"`
	PatternOrder  []string    `json:"pattern_order,omitempty"`
	Plan          []PlanEntry `json:"plan,omitempty"`
	// Trace is the execution's span tree, present only when the request
	// set "trace": true.
	Trace *obs.SpanNode `json:"trace,omitempty"`
	// Partial marks a scatter-gathered result some shard members could
	// not contribute to; Warnings names them. Partial results do not
	// paginate (next_cursor stays empty).
	Partial  bool           `json:"partial,omitempty"`
	Warnings []ShardWarning `json:"warnings,omitempty"`
}

// StreamHeader is the first NDJSON line of a streaming response.
type StreamHeader struct {
	Columns []string `json:"columns"`
	Cached  bool     `json:"cached,omitempty"`
}

// StreamTrailer is the last NDJSON line of a streaming response. A
// mid-stream failure surfaces here (the status is already 200), with
// the same machine-readable code the buffered endpoint would return.
type StreamTrailer struct {
	Done          bool    `json:"done"`
	Rows          int     `json:"rows"`
	DurationMS    float64 `json:"duration_ms"`
	ScannedEvents int64   `json:"scanned_events"`
	Error         string  `json:"error,omitempty"`
	Code          string  `json:"code,omitempty"`
	// Partial marks a stream some shard members could not contribute
	// to; Warnings names them with the typed shard_unavailable code.
	// The rows already streamed are complete for every healthy member.
	Partial  bool           `json:"partial,omitempty"`
	Warnings []ShardWarning `json:"warnings,omitempty"`
	// Trace is the execution's span tree, present only when the request
	// set "trace": true.
	Trace *obs.SpanNode `json:"trace,omitempty"`
}

// maxRequestBody caps request bodies: queries are human-written text, so
// anything beyond this is abuse, and the cap keeps oversized bodies from
// buffering into memory before admission control can reject the query.
const maxRequestBody = 1 << 20

// CheckRequest and CheckResponse are the wire forms of syntax checking.
type CheckRequest struct {
	Query string `json:"query"`
}

// CheckResponse reports validation outcome without executing. Failures
// carry the same machine-readable code and position as query errors.
type CheckResponse struct {
	OK       bool           `json:"ok"`
	Kind     string         `json:"kind,omitempty"`
	Error    string         `json:"error,omitempty"`
	Code     string         `json:"code,omitempty"`
	Position *ErrorPosition `json:"position,omitempty"`
}

// clientKeyHeader lets API clients identify themselves for fairness
// accounting; without it the remote address is the client key.
const clientKeyHeader = "X-Client-Id"

// clientKey derives the per-client fairness key for a request.
func clientKey(r *http.Request) string {
	if k := r.Header.Get(clientKeyHeader); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// Resolver maps a request's dataset name to the service owning it; the
// empty name selects the default dataset. Implementations must be safe
// for concurrent use — the catalog's resolver returns the service bound
// to the dataset's current store, so a hot-swap redirects new requests
// while in-flight queries finish on the service they started with.
type Resolver interface {
	Resolve(dataset string) (*Service, error)
}

// ErrUnknownDataset reports a dataset name the resolver does not serve.
var ErrUnknownDataset = errors.New("service: unknown dataset")

// selfResolver serves every dataset name's empty value from one fixed
// service (single-dataset deployments and tests).
type selfResolver struct{ s *Service }

func (r selfResolver) Resolve(dataset string) (*Service, error) {
	if dataset != "" {
		return nil, fmt.Errorf("%w: %q (single-dataset server)", ErrUnknownDataset, dataset)
	}
	return r.s, nil
}

// Handler returns the versioned JSON API over this single service; see
// NewHandler.
func (s *Service) Handler() http.Handler {
	return NewHandler(selfResolver{s})
}

// NewHandler returns the versioned JSON API, routing each request to
// the service its `dataset` field names:
//
//	POST /api/v1/prepare       PrepareRequest → PrepareResponse
//	POST /api/v1/query         QueryRequest → QueryResult | ErrorResponse
//	POST /api/v1/query/stream  QueryRequest → NDJSON stream
//	POST /api/v1/check         CheckRequest → CheckResponse
//	GET  /api/v1/stats[?dataset=name]       → DatasetStats
//	GET  /api/v1/queries/slow               → SlowQueriesResponse
//	POST /api/v1/ingest[?dataset=name]      NDJSON IngestRecord lines → IngestResult
//	POST /api/v1/watch         WatchRequest → WatchInfo
//	GET  /api/v1/watch[?dataset=name]       → []WatchInfo
//	DELETE /api/v1/watch/{id}[?dataset=name]
//	GET  /api/v1/watch/{id}/events[?dataset=name]  → SSE match stream
//
// Prepare registers a query template (with `$name` parameters) once;
// both query endpoints then execute it by `stmt_id` + `params`, or
// accept inline `query` + `params` for one-shot parameterized runs.
// The buffered endpoint pages large results: pass `limit` as the page
// size and follow `next_cursor` until it is empty; every page of one
// cursor chain is served from the same store snapshot. Passing
// `"explain": true` returns the scheduled pattern order and estimates
// (`plan`) without executing. The stream endpoint emits NDJSON — a
// StreamHeader line, one JSON array per row as the engine produces it,
// and a StreamTrailer line — flushing as rows arrive, and aborts the
// scan when the client disconnects.
//
// Every failure is an ErrorResponse carrying a stable machine-readable
// code (parse_error, unknown_param, stmt_not_found, overloaded, …),
// the source position for query-text errors, and a status code: 400
// for malformed requests, bindings, and query errors, 404 for unknown
// datasets and unknown/expired statements, 410 for expired cursors,
// 429 for per-client throttling (with Retry-After), 504 for
// deadline-exceeded, 503 for admission rejections (with Retry-After),
// 405 for wrong methods.
func NewHandler(r Resolver) http.Handler {
	h := &apiHandler{resolve: r}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/prepare", h.handlePrepare)
	mux.HandleFunc("/api/v1/query", h.handleQuery)
	mux.HandleFunc("/api/v1/query/stream", h.handleQueryStream)
	mux.HandleFunc("/api/v1/check", h.handleCheck)
	mux.HandleFunc("/api/v1/healthz", h.handleHealthz)
	mux.HandleFunc("/api/v1/stats", h.handleStats)
	mux.HandleFunc("/api/v1/queries/slow", h.handleSlowQueries)
	mux.HandleFunc("/api/v1/ingest", h.handleIngest)
	mux.HandleFunc("/api/v1/watch", h.handleWatch)
	mux.HandleFunc("/api/v1/watch/", h.handleWatchSub)
	return mux
}

// apiHandler binds the wire handlers to a dataset resolver.
type apiHandler struct {
	resolve Resolver
}

// resolveService maps the request's dataset to its service, writing the
// error response on failure.
func (h *apiHandler) resolveService(w http.ResponseWriter, dataset string) (*Service, bool) {
	svc, err := h.resolve.Resolve(dataset)
	if err != nil {
		WriteError(w, err)
		return nil, false
	}
	return svc, true
}

// decodeBody parses a POST JSON body into dst, writing the structured
// error response (method_not_allowed, bad_request) on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		WriteError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethodNotAllowed, msg: "POST only"})
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(dst); err != nil {
		WriteError(w, &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: "bad request: " + err.Error()})
		return false
	}
	return true
}

// decodeQuery parses the request body shared by the buffered and
// streaming endpoints, reporting (ok=false) after writing the error.
func decodeQuery(w http.ResponseWriter, r *http.Request) (QueryRequest, bool) {
	var req QueryRequest
	ok := decodeBody(w, r, &req)
	return req, ok
}

// handlePrepare registers a query template and returns its handle and
// inferred parameter signature.
func (h *apiHandler) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	svc, ok := h.resolveService(w, req.Dataset)
	if !ok {
		return
	}
	info, err := svc.Prepare(req.Query)
	if err != nil {
		WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PrepareResponse{
		StmtID:  info.StmtID,
		Kind:    info.Kind,
		Params:  info.Params,
		Columns: info.Columns,
	})
}

func (h *apiHandler) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQuery(w, r)
	if !ok {
		return
	}
	svc, ok := h.resolveService(w, req.Dataset)
	if !ok {
		return
	}
	resp, err := svc.Do(r.Context(), Request{
		Query:      req.Query,
		StmtID:     req.StmtID,
		Params:     req.Params,
		Limit:      req.Limit,
		Cursor:     req.Cursor,
		Client:     clientKey(r),
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Explain:    req.Explain,
		Trace:      req.Trace,
		RequireAll: req.RequireAll,
	})
	if err != nil {
		WriteError(w, err)
		return
	}
	out := QueryResult{
		Columns:       resp.Columns,
		Rows:          resp.Rows,
		TotalRows:     resp.TotalRows,
		Offset:        resp.Offset,
		NextCursor:    resp.NextCursor,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		Cached:        resp.Cached,
		Kind:          resp.Kind,
		ScannedEvents: resp.Stats.ScannedEvents,
		SegmentHits:   resp.Stats.SegmentHits,
		SegmentMisses: resp.Stats.SegmentMisses,
		PatternOrder:  resp.Stats.PatternOrder,
		Trace:         resp.Trace,
		Partial:       resp.Partial,
		Warnings:      resp.Warnings,
	}
	for _, e := range resp.Plan {
		out.Plan = append(out.Plan, PlanEntry{Alias: e.Alias, Estimate: e.Estimate})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQueryStream serves one query as NDJSON, flushing rows as the
// engine produces them. The response is 200 once streaming starts;
// failures before the first byte use normal error statuses, failures
// mid-stream surface in the trailer.
func (h *apiHandler) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQuery(w, r)
	if !ok {
		return
	}
	if req.Explain {
		// a plan has no row stream; the buffered endpoint serves explain
		WriteError(w, &apiError{status: http.StatusBadRequest, code: CodeUnsupported,
			msg: "explain is not supported on the stream endpoint; use POST /api/v1/query"})
		return
	}
	svc, ok := h.resolveService(w, req.Dataset)
	if !ok {
		return
	}
	var (
		enc     = json.NewEncoder(w)
		flush   func()
		started bool
	)
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	} else {
		flush = func() {}
	}
	resp, err := svc.DoStream(r.Context(), Request{
		Query:      req.Query,
		StmtID:     req.StmtID,
		Params:     req.Params,
		Limit:      req.Limit,
		Client:     clientKey(r),
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Trace:      req.Trace,
		Sorted:     req.Sorted,
		RequireAll: req.RequireAll,
	},
		func(cols []string, cached bool) error {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
			if err := enc.Encode(StreamHeader{Columns: cols, Cached: cached}); err != nil {
				return err
			}
			flush()
			return nil
		},
		func(row []string) error {
			if err := enc.Encode(row); err != nil {
				return err
			}
			flush()
			return nil
		})
	if err != nil {
		if !started {
			WriteError(w, err)
			return
		}
		// the stream is already 200 + partial rows: the trailer is the
		// only place left to report the failure
		if encErr := enc.Encode(StreamTrailer{Error: err.Error(), Code: ErrorBody(err).Code}); encErr == nil {
			flush()
		}
		return
	}
	if encErr := enc.Encode(StreamTrailer{
		Done:          true,
		Rows:          resp.TotalRows,
		DurationMS:    float64(resp.Duration) / float64(time.Millisecond),
		ScannedEvents: resp.Stats.ScannedEvents,
		Partial:       resp.Partial,
		Warnings:      resp.Warnings,
		Trace:         resp.Trace,
	}); encErr == nil {
		flush()
	}
}

func (h *apiHandler) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := aiql.Check(req.Query); err != nil {
		body := ErrorBody(err)
		writeJSON(w, http.StatusOK, CheckResponse{Error: err.Error(), Code: body.Code, Position: body.Position})
		return
	}
	kind, _ := aiql.QueryKind(req.Query)
	writeJSON(w, http.StatusOK, CheckResponse{OK: true, Kind: kind})
}

// handleHealthz reports readiness/liveness for load balancers, shard
// coordinators, and process supervisors: 200 with the Health body when
// the dataset (selected by the `dataset` query parameter, default
// otherwise) can serve queries, 503 when the catalog has not loaded it
// or its store is closed. The body's generation is the store epoch
// shard probes watch for remote cache invalidation.
func (h *apiHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethodNotAllowed, msg: "GET only"})
		return
	}
	name := r.URL.Query().Get("dataset")
	svc, err := h.resolve.Resolve(name)
	if err != nil {
		// the catalog is up but the dataset isn't loaded (or never will
		// be): unavailable, with the structured reason inline
		writeJSON(w, http.StatusServiceUnavailable, Health{Status: "unavailable", Dataset: name})
		return
	}
	health := svc.Health()
	health.Dataset = name
	status := http.StatusOK
	if health.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, health)
}

// handleStats reports one dataset's full statistics: service counters,
// store segment layout, and segment scan-cache figures. The dataset is
// selected with the `dataset` query parameter; empty means the default.
func (h *apiHandler) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	svc, ok := h.resolveService(w, name)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, svc.DatasetStats(name))
}

// SlowQueriesResponse is the wire form of the slow-query log: the
// active threshold, the count of entries ever recorded (the ring keeps
// only the most recent), and the retained entries newest-first.
type SlowQueriesResponse struct {
	ThresholdMS int64           `json:"threshold_ms"`
	Total       uint64          `json:"total"`
	Entries     []obs.SlowEntry `json:"entries"`
}

// handleSlowQueries reports the slow-query log. The log is shared
// across datasets (each entry names its dataset), so the endpoint takes
// no dataset parameter; a server configured without one reports a
// negative threshold and no entries.
func (h *apiHandler) handleSlowQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethodNotAllowed, msg: "GET only"})
		return
	}
	svc, ok := h.resolveService(w, "")
	if !ok {
		return
	}
	sl := svc.SlowLog()
	entries, total := sl.Snapshot()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, SlowQueriesResponse{
		ThresholdMS: sl.ThresholdMS(),
		Total:       total,
		Entries:     entries,
	})
}

// WatchRequest is the wire form of a standing-query registration.
type WatchRequest struct {
	// Query is the AIQL template; `$name` parameters are bound once,
	// at registration, by Params.
	Query  string         `json:"query"`
	Params map[string]any `json:"params,omitempty"`
	// Dataset names the catalog dataset the watch observes.
	Dataset string `json:"dataset,omitempty"`
}

// handleIngest commits one NDJSON batch of monitoring events. The body
// is a stream of IngestRecord JSON values (one per line by convention);
// the whole batch commits atomically — any invalid record rejects the
// request before a single append.
func (h *apiHandler) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethodNotAllowed, msg: "POST only"})
		return
	}
	svc, ok := h.resolveService(w, r.URL.Query().Get("dataset"))
	if !ok {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, svc.cfg.IngestMaxBytes))
	var recs []aiql.Record
	for line := 1; ; line++ {
		var ir IngestRecord
		if err := dec.Decode(&ir); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				svc.ingestRejected.Add(1)
				WriteError(w, &apiError{status: http.StatusRequestEntityTooLarge, code: CodeTooLarge,
					msg: fmt.Sprintf("ingest body exceeds %d bytes, split the batch", svc.cfg.IngestMaxBytes)})
				return
			}
			svc.ingestRejected.Add(1)
			WriteError(w, &apiError{status: http.StatusBadRequest, code: CodeBadRequest,
				msg: fmt.Sprintf("ingest record %d: bad JSON: %v", line, err)})
			return
		}
		rec, err := ir.toRecord(line)
		if err != nil {
			svc.ingestRejected.Add(1)
			WriteError(w, err)
			return
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		WriteError(w, &apiError{status: http.StatusBadRequest, code: CodeBadRequest,
			msg: "ingest body carries no records"})
		return
	}
	res, err := svc.Ingest(r.Context(), clientKey(r), recs)
	if err != nil {
		WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleWatch registers a standing query (POST) or lists the registered
// ones (GET).
func (h *apiHandler) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		svc, ok := h.resolveService(w, r.URL.Query().Get("dataset"))
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, svc.Watches())
		return
	}
	var req WatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	svc, ok := h.resolveService(w, req.Dataset)
	if !ok {
		return
	}
	info, err := svc.Watch(r.Context(), req.Query, req.Params)
	if err != nil {
		WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleWatchSub routes the /api/v1/watch/{id}[/events] subtree:
// DELETE {id} removes the watch, GET {id} describes it, GET
// {id}/events streams its matches over SSE.
func (h *apiHandler) handleWatchSub(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/watch/")
	id, sub, _ := strings.Cut(rest, "/")
	svc, ok := h.resolveService(w, r.URL.Query().Get("dataset"))
	if !ok {
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodDelete:
		if err := svc.Unwatch(id); err != nil {
			WriteError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	case sub == "" && r.Method == http.MethodGet:
		info, err := svc.WatchInfo(id)
		if err != nil {
			WriteError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	case sub == "events" && r.Method == http.MethodGet:
		h.serveWatchEvents(w, r, svc, id)
	default:
		WriteError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethodNotAllowed,
			msg: "use DELETE /api/v1/watch/{id}, GET /api/v1/watch/{id} or GET /api/v1/watch/{id}/events"})
	}
}

// serveWatchEvents streams a watch's matches as Server-Sent Events:
// one `match` event per post-ingest evaluation that produced fresh
// rows (data: WatchMatch JSON), and a final `close` event if the watch
// is deleted. A client disconnect tears the subscription down — the
// bounded buffer stops accumulating the moment the consumer is gone.
func (h *apiHandler) serveWatchEvents(w http.ResponseWriter, r *http.Request, svc *Service, id string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, &apiError{status: http.StatusBadRequest, code: CodeUnsupported,
			msg: "response writer does not support streaming"})
		return
	}
	sub, err := svc.Subscribe(id)
	if err != nil {
		WriteError(w, err)
		return
	}
	defer svc.Unsubscribe(id, sub)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": watching %s\n\n", id)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Closed():
			fmt.Fprint(w, "event: close\ndata: {}\n\n")
			fl.Flush()
			return
		case m := <-sub.Matches():
			data, err := json.Marshal(m)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: match\ndata: %s\n\n", data)
			fl.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if (status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests) &&
		w.Header().Get("Retry-After") == "" {
		// floor for rejections raised without a load-derived hint
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("service: response encode failed", "error", err)
	}
}
