package service

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/aiql/lexer"
	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/aiql/token"
	"github.com/aiql/aiql/internal/engine"
)

// Stable machine-readable error codes carried by every API failure.
// Clients dispatch on the code; the message is for humans and may
// change between releases.
const (
	// CodeParseError: the query text does not lex or parse; position
	// points at the offending token.
	CodeParseError = "parse_error"
	// CodeSemanticError: the query parses but fails validation
	// (unknown attribute, type conflict, bad alias); position points at
	// the offending clause.
	CodeSemanticError = "semantic_error"
	// CodeUnknownParam: a binding names a parameter the statement does
	// not declare.
	CodeUnknownParam = "unknown_param"
	// CodeMissingParam: a declared parameter has no binding.
	CodeMissingParam = "missing_param"
	// CodeParamTypeMismatch: a binding's value (or two conflicting
	// placeholder positions) does not fit the parameter's inferred type.
	CodeParamTypeMismatch = "param_type_mismatch"
	// CodeStmtNotFound: the stmt_id is unknown, expired, or evicted;
	// re-prepare and retry.
	CodeStmtNotFound = "stmt_not_found"
	// CodeBadCursor: the pagination cursor is malformed or belongs to a
	// different query.
	CodeBadCursor = "bad_cursor"
	// CodeCursorExpired: the cursor's snapshot is gone; re-issue the
	// query.
	CodeCursorExpired = "cursor_expired"
	// CodeOverloaded: the service shed the query; back off and retry.
	CodeOverloaded = "overloaded"
	// CodeThrottled: the client exceeded its concurrent-execution
	// share; back off and retry.
	CodeThrottled = "throttled"
	// CodeTimeout: the per-query deadline expired mid-execution.
	CodeTimeout = "timeout"
	// CodeCanceled: the client went away before the query finished.
	CodeCanceled = "canceled"
	// CodeUnknownDataset: the named dataset is not registered.
	CodeUnknownDataset = "unknown_dataset"
	// CodeBadRequest: the request itself is malformed (bad JSON,
	// oversized body).
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeUnsupported: the endpoint cannot serve this request shape
	// (e.g. explain on the stream endpoint).
	CodeUnsupported = "unsupported"
	// CodeExecError: the query failed during execution (resource
	// limits, internal errors) — the fallback code.
	CodeExecError = "exec_error"
	// CodeDatasetReloading: a write raced a catalog hot-swap and hit
	// the closed store; retry after the reload completes.
	CodeDatasetReloading = "dataset_reloading"
	// CodeTooLarge: the ingest request exceeds the record or byte cap;
	// split the batch.
	CodeTooLarge = "too_large"
	// CodeWatchNotFound: the watch id is unknown or already deleted.
	CodeWatchNotFound = "watch_not_found"
	// CodeWatchLimit: the dataset's standing-query capacity is reached;
	// delete a watch or retry later.
	CodeWatchLimit = "watch_limit"
	// CodeShardUnavailable: a shard member was unreachable. As an error
	// code the whole query failed (require_all, or every member down);
	// as a warning code inside a 200 response it marks the result
	// partial — complete for every healthy member, missing the rest.
	CodeShardUnavailable = "shard_unavailable"
)

// ErrShardUnavailable reports that a required shard member could not be
// reached: the caller set require_all, or no member at all was
// reachable. Queries that can tolerate gaps should clear require_all
// and read the warnings instead.
var ErrShardUnavailable = errors.New("service: shard unavailable")

// ErrorPosition is a 1-based source position in the submitted query.
type ErrorPosition struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// ErrorResponse is the wire form of any API failure: a stable
// machine-readable code, a human-readable message, the source position
// for query-text errors, and optional detail (the offending parameter
// name, a hint).
type ErrorResponse struct {
	Code     string         `json:"code"`
	Error    string         `json:"error"`
	Position *ErrorPosition `json:"position,omitempty"`
	Detail   string         `json:"detail,omitempty"`
}

// apiError lets handlers raise a failure with an explicit code and
// status (method checks, body decoding) through the same writer as
// service errors.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// APIError builds an error carrying an explicit HTTP status and wire
// code through WriteError/ErrorBody unchanged. The shard coordinator
// uses it to relay a member's own structured failure (a binding
// rejected by the member's store, say) without re-classifying it.
func APIError(status int, code, msg string) error {
	return &apiError{status: status, code: code, msg: msg}
}

// ErrorBody classifies err into the structured wire form.
func ErrorBody(err error) ErrorResponse {
	out := ErrorResponse{Code: CodeExecError, Error: err.Error()}
	pos := func(p token.Pos) *ErrorPosition { return &ErrorPosition{Line: p.Line, Col: p.Col} }
	var (
		lexErr   *lexer.Error
		parseErr *parser.Error
		semErr   *semantic.Error
		confErr  *semantic.ParamError
		bindErr  *engine.ParamError
		httpErr  *apiError
	)
	switch {
	case errors.As(err, &httpErr):
		out.Code = httpErr.code
	case errors.As(err, &lexErr):
		out.Code = CodeParseError
		out.Position = pos(lexErr.Pos)
		out.Detail = lexErr.Msg
	case errors.As(err, &parseErr):
		out.Code = CodeParseError
		out.Position = pos(parseErr.Pos)
		out.Detail = parseErr.Msg
	case errors.As(err, &confErr):
		out.Code = CodeParamTypeMismatch
		out.Position = pos(confErr.Pos)
		out.Detail = "parameter $" + confErr.Name
	case errors.As(err, &semErr):
		out.Code = CodeSemanticError
		out.Position = pos(semErr.Pos)
		out.Detail = semErr.Msg
	case errors.As(err, &bindErr):
		out.Code = string(bindErr.Code)
		out.Detail = "parameter $" + bindErr.Name
	case errors.Is(err, ErrStmtNotFound):
		out.Code = CodeStmtNotFound
	case errors.Is(err, ErrBadCursor):
		out.Code = CodeBadCursor
	case errors.Is(err, ErrCursorExpired):
		out.Code = CodeCursorExpired
	case errors.Is(err, ErrOverloaded):
		out.Code = CodeOverloaded
	case errors.Is(err, ErrClientThrottled):
		out.Code = CodeThrottled
	case errors.Is(err, ErrUnknownDataset):
		out.Code = CodeUnknownDataset
	case errors.Is(err, aiql.ErrClosed):
		out.Code = CodeDatasetReloading
	case errors.Is(err, ErrWatchNotFound):
		out.Code = CodeWatchNotFound
	case errors.Is(err, ErrWatchLimit):
		out.Code = CodeWatchLimit
	case errors.Is(err, ErrShardUnavailable):
		out.Code = CodeShardUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		out.Code = CodeTimeout
	case errors.Is(err, context.Canceled):
		out.Code = CodeCanceled
	}
	return out
}

// statusFor maps service errors to HTTP status codes.
func statusFor(err error) int {
	var httpErr *apiError
	if errors.As(err, &httpErr) {
		return httpErr.status
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClientThrottled):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCursorExpired):
		return http.StatusGone
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, ErrStmtNotFound):
		return http.StatusNotFound
	case errors.Is(err, aiql.ErrClosed):
		// the hot-swap completes momentarily; 503 + Retry-After tells
		// the writer to resend the batch rather than drop it
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrWatchNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrWatchLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShardUnavailable):
		// the member may come back momentarily; 503 + Retry-After tells
		// the client to re-issue rather than treat the data as gone
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// retryHintError decorates a shed request with the backoff the client
// should observe, derived from live queue pressure at rejection time.
// The HTTP layer surfaces it as the Retry-After header; the wrapped
// error keeps its identity for errors.Is dispatch.
type retryHintError struct {
	err   error
	after int // whole seconds
}

func (e *retryHintError) Error() string { return e.err.Error() }
func (e *retryHintError) Unwrap() error { return e.err }

// WriteError writes err as a structured JSON error response with the
// appropriate status code. It is shared by every API endpoint
// (including the catalog's management handlers) so all failures carry
// the same machine-readable model. Rejections carrying a load-derived
// backoff hint set Retry-After from it; writeJSON fills the 1s floor
// for 429/503 failures raised without one.
func WriteError(w http.ResponseWriter, err error) {
	var hint *retryHintError
	if errors.As(err, &hint) {
		w.Header().Set("Retry-After", strconv.Itoa(hint.after))
	}
	writeJSON(w, statusFor(err), ErrorBody(err))
}
