package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

const paramQuery = `proc p[$exe] write file f as evt return p, f`

func TestServicePrepareAndExecute(t *testing.T) {
	svc := New(newTestDB(t, 20), Config{})
	ctx := context.Background()

	info, err := svc.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.StmtID, "stmt_") || info.Kind != "multievent" {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Params) != 1 || info.Params[0] != (ParamInfo{Name: "exe", Type: "string"}) {
		t.Fatalf("params = %+v", info.Params)
	}

	resp, err := svc.Do(ctx, Request{StmtID: info.StmtID, Params: map[string]any{"exe": "%worker.exe"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalRows != 20 || resp.Cached {
		t.Fatalf("resp = total %d cached %v", resp.TotalRows, resp.Cached)
	}
	if resp.Kind != "multievent" {
		t.Errorf("kind = %q", resp.Kind)
	}

	// identical bindings hit the result cache; different bindings miss
	// but share the compiled plan
	again, err := svc.Do(ctx, Request{StmtID: info.StmtID, Params: map[string]any{"exe": "%worker.exe"}})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical bindings not served from cache")
	}
	other, err := svc.Do(ctx, Request{StmtID: info.StmtID, Params: map[string]any{"exe": "%nosuch%"}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached || other.TotalRows != 0 {
		t.Errorf("distinct binding: cached=%v rows=%d", other.Cached, other.TotalRows)
	}

	st := svc.PreparedStats()
	if st.Statements != 1 || st.Hits < 3 {
		t.Errorf("prepared stats = %+v", st)
	}
}

// TestInlineParamsShareCacheWithStmt: an inline query+params execution
// and a stmt_id execution of the same template and bindings are one
// cache entry (keyed on fingerprint + canonical bindings).
func TestInlineParamsShareCacheWithStmt(t *testing.T) {
	svc := New(newTestDB(t, 10), Config{})
	ctx := context.Background()

	info, err := svc.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.Do(ctx, Request{StmtID: info.StmtID, Params: map[string]any{"exe": "%worker.exe"}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first execution cached")
	}
	// reformatted inline text, same template fingerprint, same bindings
	inline, err := svc.Do(ctx, Request{
		Query:  "proc p[$exe]   write file f as evt\nreturn p, f",
		Params: map[string]any{"exe": "%worker.exe"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !inline.Cached {
		t.Error("inline execution of the same template+bindings missed the cache")
	}
}

func TestPreparedRegistryEviction(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{PreparedEntries: 2})
	ids := make([]string, 3)
	for i := range ids {
		info, err := svc.Prepare(fmt.Sprintf(`proc p[$e%d] write file f as evt return p`, i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.StmtID
	}
	if _, err := svc.prepared.get(ids[0], time.Now()); !errors.Is(err, ErrStmtNotFound) {
		t.Errorf("oldest statement survived a full registry: %v", err)
	}
	if _, err := svc.prepared.get(ids[2], time.Now()); err != nil {
		t.Errorf("newest statement evicted: %v", err)
	}
	if st := svc.PreparedStats(); st.Evictions != 1 || st.Statements != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPreparedRegistryTTL(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{PreparedTTL: time.Nanosecond})
	info, err := svc.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	_, err = svc.Do(context.Background(), Request{StmtID: info.StmtID, Params: map[string]any{"exe": "%"}})
	if !errors.Is(err, ErrStmtNotFound) {
		t.Fatalf("expired statement answered: %v", err)
	}
	if st := svc.PreparedStats(); st.Expired == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHTTPPrepareRoundTrip(t *testing.T) {
	svc := New(newTestDB(t, 30), Config{})
	h := svc.Handler()

	rec := doJSON(t, h, http.MethodPost, "/api/v1/prepare",
		`{"query": "proc p[$exe] write file f as evt return p, f"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("prepare status %d: %s", rec.Code, rec.Body.String())
	}
	var prep PrepareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
		t.Fatal(err)
	}
	if prep.StmtID == "" || prep.Kind != "multievent" {
		t.Fatalf("prepare response = %+v", prep)
	}
	if len(prep.Params) != 1 || prep.Params[0].Name != "exe" || prep.Params[0].Type != "string" {
		t.Fatalf("params = %+v", prep.Params)
	}
	if len(prep.Columns) != 2 {
		t.Errorf("columns = %v", prep.Columns)
	}

	rec = doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"stmt_id": "`+prep.StmtID+`", "params": {"exe": "%worker.exe"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
	}
	out := decodeResult(t, rec)
	if out.TotalRows != 30 || len(out.Rows) != 30 {
		t.Errorf("total_rows=%d rows=%d, want 30/30", out.TotalRows, len(out.Rows))
	}

	// execute-by-stmt_id with explain returns the frozen plan
	rec = doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"stmt_id": "`+prep.StmtID+`", "params": {"exe": "%worker.exe"}, "explain": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status %d: %s", rec.Code, rec.Body.String())
	}
	if out := decodeResult(t, rec); len(out.Plan) != 1 || len(out.Rows) != 0 {
		t.Errorf("explain = %+v", out)
	}
}

// TestHTTPErrorModelGolden pins the structured error model: stable
// machine-readable codes, line/col positions for query-text errors, and
// the parameter name in detail for binding errors.
func TestHTTPErrorModelGolden(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{PreparedTTL: time.Nanosecond})
	h := svc.Handler()

	expired, err := svc.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)

	valid := New(newTestDB(t, 5), Config{})
	prepped, err := valid.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	vh := valid.Handler()

	cases := []struct {
		name       string
		handler    http.Handler
		path, body string
		status     int
		code       string
		line, col  int    // 0 = no position expected
		detail     string // substring; "" = don't care
	}{
		{
			name: "parse error with line and col", handler: vh, path: "/api/v1/query",
			body:   `{"query": "proc p write file f as evt\nreturn ??"}`,
			status: http.StatusBadRequest, code: CodeParseError, line: 2, col: 8,
		},
		{
			name: "lex error position", handler: vh, path: "/api/v1/query",
			body:   `{"query": "proc p[$] start proc q return p"}`,
			status: http.StatusBadRequest, code: CodeParseError, line: 1, col: 8,
		},
		{
			name: "semantic error", handler: vh, path: "/api/v1/query",
			body:   `{"query": "proc p write file f as evt return q"}`,
			status: http.StatusBadRequest, code: CodeSemanticError, line: 1, col: 35,
		},
		{
			name: "unknown param", handler: vh, path: "/api/v1/query",
			body:   `{"stmt_id": "` + prepped.StmtID + `", "params": {"exe": "%", "bogus": 1}}`,
			status: http.StatusBadRequest, code: CodeUnknownParam, detail: "$bogus",
		},
		{
			name: "missing param", handler: vh, path: "/api/v1/query",
			body:   `{"stmt_id": "` + prepped.StmtID + `"}`,
			status: http.StatusBadRequest, code: CodeMissingParam, detail: "$exe",
		},
		{
			name: "type mismatch inline", handler: vh, path: "/api/v1/query",
			body:   `{"query": "agentid = $a proc p write file f as evt return p", "params": {"a": "not-a-number"}}`,
			status: http.StatusBadRequest, code: CodeParamTypeMismatch, detail: "$a",
		},
		{
			name: "conflicting param positions", handler: vh, path: "/api/v1/prepare",
			body:   `{"query": "agentid = $x proc p[$x] write file f as evt return p"}`,
			status: http.StatusBadRequest, code: CodeParamTypeMismatch, detail: "$x",
		},
		{
			name: "expired stmt_id", handler: h, path: "/api/v1/query",
			body:   `{"stmt_id": "` + expired.StmtID + `", "params": {"exe": "%"}}`,
			status: http.StatusNotFound, code: CodeStmtNotFound,
		},
		{
			name: "unknown stmt_id", handler: vh, path: "/api/v1/query",
			body:   `{"stmt_id": "stmt_deadbeef", "params": {}}`,
			status: http.StatusNotFound, code: CodeStmtNotFound,
		},
		{
			name: "malformed JSON", handler: vh, path: "/api/v1/query",
			body:   `{"query": `,
			status: http.StatusBadRequest, code: CodeBadRequest,
		},
		{
			name: "explain on stream", handler: vh, path: "/api/v1/query/stream",
			body:   `{"query": "proc p write file f as evt return p", "explain": true}`,
			status: http.StatusBadRequest, code: CodeUnsupported,
		},
		{
			name: "unknown dataset", handler: vh, path: "/api/v1/query",
			body:   `{"query": "proc p write file f as evt return p", "dataset": "nope"}`,
			status: http.StatusNotFound, code: CodeUnknownDataset,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, tc.handler, http.MethodPost, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			e := decodeError(t, rec)
			if e.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", e.Code, tc.code, rec.Body.String())
			}
			if e.Error == "" {
				t.Error("empty error message")
			}
			if tc.line != 0 {
				if e.Position == nil {
					t.Fatalf("no position: %s", rec.Body.String())
				}
				if e.Position.Line != tc.line || e.Position.Col != tc.col {
					t.Errorf("position %d:%d, want %d:%d", e.Position.Line, e.Position.Col, tc.line, tc.col)
				}
			}
			if tc.detail != "" && !strings.Contains(e.Detail, tc.detail) {
				t.Errorf("detail %q does not mention %q", e.Detail, tc.detail)
			}
		})
	}
}

func TestHTTPMethodNotAllowedCode(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/prepare", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", rec.Code)
	}
	if e := decodeError(t, rec); e.Code != CodeMethodNotAllowed {
		t.Errorf("code = %q", e.Code)
	}
}

// TestHTTPStreamByStmtID: the NDJSON stream endpoint executes
// registered statements with bindings.
func TestHTTPStreamByStmtID(t *testing.T) {
	svc := New(newTestDB(t, 25), Config{})
	h := svc.Handler()

	rec := doJSON(t, h, http.MethodPost, "/api/v1/prepare",
		`{"query": "proc p[$exe] write file f as evt return p, f"}`)
	var prep PrepareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
		t.Fatal(err)
	}

	rec = doJSON(t, h, http.MethodPost, "/api/v1/query/stream",
		`{"stmt_id": "`+prep.StmtID+`", "params": {"exe": "%worker.exe"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 25+2 { // header + rows + trailer
		t.Fatalf("stream has %d lines, want 27:\n%s", len(lines), rec.Body.String())
	}
	var header StreamHeader
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil || len(header.Columns) != 2 {
		t.Fatalf("header %q (%v)", lines[0], err)
	}
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || !trailer.Done || trailer.Rows != 25 {
		t.Fatalf("trailer %q (%v)", lines[len(lines)-1], err)
	}

	// a bad binding fails before the stream starts, with the structured model
	rec = doJSON(t, h, http.MethodPost, "/api/v1/query/stream",
		`{"stmt_id": "`+prep.StmtID+`", "params": {"wrong": 1}}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if e := decodeError(t, rec); e.Code != CodeUnknownParam {
		t.Errorf("code = %q", e.Code)
	}
}

// TestHTTPStatsReportPrepared: GET /api/v1/stats carries the
// prepared-registry figures.
func TestHTTPStatsReportPrepared(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	h := svc.Handler()
	rec := doJSON(t, h, http.MethodPost, "/api/v1/prepare",
		`{"query": "proc p[$exe] write file f as evt return p"}`)
	var prep PrepareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
		t.Fatal(err)
	}
	doJSON(t, h, http.MethodPost, "/api/v1/query",
		`{"stmt_id": "`+prep.StmtID+`", "params": {"exe": "%"}}`)

	rec = doJSON(t, h, http.MethodGet, "/api/v1/stats", "")
	var st DatasetStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Prepared.Statements != 1 || st.Prepared.Hits == 0 {
		t.Errorf("prepared stats = %+v", st.Prepared)
	}
}
