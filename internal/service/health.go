package service

// Health is the readiness/liveness report of one dataset's service,
// served at GET /api/v1/healthz. Shard coordinators probe their remote
// members' healthz: Generation doubles as the member's store epoch, so
// a probe both confirms liveness and detects new data for cache
// invalidation.
type Health struct {
	// Status is "ok" when the dataset can serve queries, "unavailable"
	// otherwise (store closed — mid hot-swap or shut down).
	Status  string `json:"status"`
	Dataset string `json:"dataset,omitempty"`
	// StoreOpen reports the backing store accepts reads. On a shard
	// coordinator it describes the planning store, which lives as long
	// as the catalog entry — member health is in ShardStats.
	StoreOpen bool `json:"store_open"`
	// WALHeld reports this process holds the durable directory's write
	// lock (always false for in-memory datasets, which have no WAL).
	WALHeld bool `json:"wal_held"`
	// Sharded marks coordinator services.
	Sharded bool `json:"sharded,omitempty"`
	// Generation is the store version queries execute over: the commit
	// counter locally, the members' combined generation on a
	// coordinator.
	Generation uint64 `json:"generation"`
}

// Health snapshots the service's readiness.
func (s *Service) Health() Health {
	open := !s.db.Closed()
	h := Health{
		Status:    "ok",
		StoreOpen: open,
		WALHeld:   open && s.db.DurableStats().Dir != "",
		Sharded:   s.shards != nil,
	}
	if !open {
		h.Status = "unavailable"
		return h
	}
	h.Generation = s.generation()
	return h
}
