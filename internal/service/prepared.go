package service

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	aiql "github.com/aiql/aiql"
)

// ErrStmtNotFound reports a stmt_id the registry does not hold: never
// issued, expired past its TTL, or evicted by the LRU. The client
// re-prepares and retries.
var ErrStmtNotFound = errors.New("service: unknown or expired statement id, prepare again")

// PreparedStats are the prepared-statement registry's figures: the
// statements currently held plus monotonic hit/miss/eviction counters.
type PreparedStats struct {
	Statements int    `json:"statements"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Expired    uint64 `json:"expired"`
}

// ParamInfo is the wire form of one signature entry.
type ParamInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// PreparedInfo is the wire-ready description of a registered statement.
type PreparedInfo struct {
	StmtID  string      `json:"stmt_id"`
	Kind    string      `json:"kind"`
	Params  []ParamInfo `json:"params"`
	Columns []string    `json:"columns,omitempty"`
}

// PreparedSeed carries one statement across a dataset hot-swap: the
// catalog re-prepares the source against the swapped-in database under
// the same id, so clients' handles survive the swap.
type PreparedSeed struct {
	ID     string
	Source string
}

// stmtEntry is one registered statement.
type stmtEntry struct {
	id       string
	stmt     *aiql.Stmt
	lastUsed time.Time
}

// preparedRegistry is a mutex-guarded LRU of prepared statements with
// idle-TTL expiry. Expired entries are pruned lazily on access and on
// insert; a stmt_id that has expired or been evicted answers
// ErrStmtNotFound.
type preparedRegistry struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions, expired uint64
}

func newPreparedRegistry(capacity int, ttl time.Duration) *preparedRegistry {
	if capacity <= 0 {
		return nil // registry disabled
	}
	return &preparedRegistry{
		cap:     capacity,
		ttl:     ttl,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// newStmtID mints an unguessable statement handle.
func newStmtID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: stmt id entropy: %v", err))
	}
	return "stmt_" + hex.EncodeToString(b[:])
}

// put registers a statement under a fresh id (or the given id, for
// hot-swap adoption) and returns the id.
func (r *preparedRegistry) put(id string, stmt *aiql.Stmt, now time.Time) string {
	if r == nil {
		return ""
	}
	if id == "" {
		id = newStmtID()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneExpired(now)
	if el, ok := r.entries[id]; ok {
		el.Value = &stmtEntry{id: id, stmt: stmt, lastUsed: now}
		r.order.MoveToFront(el)
		return id
	}
	r.entries[id] = r.order.PushFront(&stmtEntry{id: id, stmt: stmt, lastUsed: now})
	for r.order.Len() > r.cap {
		oldest := r.order.Back()
		r.order.Remove(oldest)
		delete(r.entries, oldest.Value.(*stmtEntry).id)
		r.evictions++
	}
	return id
}

// get looks up a statement, refreshing its LRU position and idle TTL.
func (r *preparedRegistry) get(id string, now time.Time) (*aiql.Stmt, error) {
	if r == nil {
		return nil, ErrStmtNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.entries[id]; ok {
		e := el.Value.(*stmtEntry)
		if r.ttl <= 0 || now.Sub(e.lastUsed) <= r.ttl {
			e.lastUsed = now
			r.order.MoveToFront(el)
			r.hits++
			return e.stmt, nil
		}
		r.order.Remove(el)
		delete(r.entries, id)
		r.expired++
	}
	r.misses++
	return nil, fmt.Errorf("%w: %q", ErrStmtNotFound, id)
}

// pruneExpired drops idle-expired entries; the caller holds the lock.
func (r *preparedRegistry) pruneExpired(now time.Time) {
	if r.ttl <= 0 {
		return
	}
	for el := r.order.Back(); el != nil; {
		e := el.Value.(*stmtEntry)
		if now.Sub(e.lastUsed) <= r.ttl {
			return // LRU order bounds idleness: everything in front is fresher
		}
		prev := el.Prev()
		r.order.Remove(el)
		delete(r.entries, e.id)
		r.expired++
		el = prev
	}
}

// stats snapshots the registry counters.
func (r *preparedRegistry) stats(now time.Time) PreparedStats {
	if r == nil {
		return PreparedStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneExpired(now)
	return PreparedStats{
		Statements: r.order.Len(),
		Hits:       r.hits,
		Misses:     r.misses,
		Evictions:  r.evictions,
		Expired:    r.expired,
	}
}

// seeds exports the held statements (most recently used first) for
// hot-swap adoption.
func (r *preparedRegistry) seeds() []PreparedSeed {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PreparedSeed, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*stmtEntry)
		out = append(out, PreparedSeed{ID: e.id, Source: e.stmt.Source()})
	}
	return out
}

// Prepare compiles a query into the per-dataset registry and returns
// its handle and typed parameter signature.
func (s *Service) Prepare(src string) (PreparedInfo, error) {
	if s.prepared == nil {
		return PreparedInfo{}, &apiError{status: 400, code: CodeUnsupported,
			msg: "service: prepared statements are disabled on this dataset"}
	}
	stmt, err := s.db.Prepare(src)
	if err != nil {
		return PreparedInfo{}, err
	}
	id := s.prepared.put("", stmt, time.Now())
	return stmtInfo(id, stmt), nil
}

func stmtInfo(id string, stmt *aiql.Stmt) PreparedInfo {
	info := PreparedInfo{StmtID: id, Kind: stmt.Kind(), Params: []ParamInfo{}, Columns: stmt.Columns()}
	for _, p := range stmt.Params() {
		info.Params = append(info.Params, ParamInfo{Name: p.Name, Type: string(p.Type)})
	}
	return info
}

// PreparedStats reports the registry's figures.
func (s *Service) PreparedStats() PreparedStats {
	return s.prepared.stats(time.Now())
}

// PreparedSeeds exports the registered statements for hot-swap
// adoption by a successor service.
func (s *Service) PreparedSeeds() []PreparedSeed {
	return s.prepared.seeds()
}

// AdoptPrepared re-prepares seeds against this service's database under
// their original ids, so statement handles survive a dataset hot-swap.
// Seeds that no longer compile are dropped silently (their ids answer
// stmt_not_found, the same contract as expiry).
func (s *Service) AdoptPrepared(seeds []PreparedSeed) {
	if s.prepared == nil {
		return
	}
	now := time.Now()
	// Insert in reverse so the most recently used seed ends up at the
	// front of the adopted LRU.
	for i := len(seeds) - 1; i >= 0; i-- {
		stmt, err := s.db.Prepare(seeds[i].Source)
		if err != nil {
			continue
		}
		s.prepared.put(seeds[i].ID, stmt, now)
	}
}

// canonBindings renders params in canonical form for cache keying:
// names sorted, values rendered unambiguously, so two requests with the
// same bindings in different order (or formatting) share one cache
// entry while any differing value separates them.
func canonBindings(params aiql.Params) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte('\x00')
		}
		b.WriteString(name)
		b.WriteByte('=')
		switch v := params[name].(type) {
		case string:
			b.WriteString(strconv.Quote(v))
		case float64:
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case int:
			b.WriteString(strconv.Itoa(v))
		default:
			fmt.Fprintf(&b, "%v", v)
		}
	}
	return b.String()
}

// stmtCacheKey builds the canonical cache-key text for a prepared
// execution: the normalized template text (collision-proof, unlike the
// 64-bit fingerprint alone) plus the canonicalized bindings. The
// leading NUL keeps the namespace disjoint from plain normalized query
// text, and the inner NUL separates template from bindings (NUL cannot
// appear in normalized query text outside string literals, whose
// quoting disambiguates).
func stmtCacheKey(stmt *aiql.Stmt, params aiql.Params) string {
	return fmt.Sprintf("\x00stmt:%s\x00%s", normalizeQuery(stmt.Source()), canonBindings(params))
}
