package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeResult(t *testing.T, rec *httptest.ResponseRecorder) QueryResult {
	t.Helper()
	var out QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return out
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var out ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return out
}

func TestHTTPQuerySuccess(t *testing.T) {
	svc := New(newTestDB(t, 20), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	out := decodeResult(t, rec)
	if out.TotalRows != 20 || len(out.Rows) != 20 {
		t.Errorf("total_rows=%d rows=%d, want 20/20", out.TotalRows, len(out.Rows))
	}
	if len(out.Columns) != 2 {
		t.Errorf("columns = %v, want 2 columns", out.Columns)
	}
	if out.Cached {
		t.Error("first execution reported cached")
	}
	if out.Kind != "multievent" {
		t.Errorf("kind = %q, want multievent", out.Kind)
	}
	if out.ScannedEvents == 0 {
		t.Error("scanned_events = 0, want > 0")
	}
	if out.DurationMS < 0 {
		t.Errorf("duration_ms = %f", out.DurationMS)
	}
}

func TestHTTPQueryParseError(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	for name, body := range map[string]string{
		"invalid AIQL":   `{"query": "this is not aiql"}`,
		"malformed JSON": `{"query": `,
		"semantic error": `{"query": "proc p write file f as evt return q"}`,
	} {
		rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, rec.Code, rec.Body.String())
			continue
		}
		if e := decodeError(t, rec); e.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

func TestHTTPQueryBodyTooLarge(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	body := `{"query": "` + strings.Repeat("x", maxRequestBody+1024) + `"}`
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for an oversized body", rec.Code)
	}
}

func TestHTTPQueryMethodNotAllowed(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/query", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}

func TestHTTPQueryTimeout(t *testing.T) {
	svc := New(fig4DB(), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "`+strings.ReplaceAll(strings.ReplaceAll(fig4Query, `"`, `\"`), "\n", " ")+`", "timeout_ms": 5}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	e := decodeError(t, rec)
	if !strings.Contains(e.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", e.Error)
	}
}

func TestHTTPQueryOverloaded(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{Workers: 1, QueueDepth: 1, QueueWait: 20 * time.Millisecond, CacheEntries: -1})
	svc.sem <- struct{}{} // jam the only worker
	defer func() { <-svc.sem }()
	svc.queued.Add(1) // and the only queue slot
	defer svc.queued.Add(-1)
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
}

func TestHTTPQueryLimitTruncation(t *testing.T) {
	svc := New(newTestDB(t, 50), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "limit": 3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decodeResult(t, rec)
	if len(out.Rows) != 3 || out.TotalRows != 50 {
		t.Errorf("rows=%d total_rows=%d, want 3/50", len(out.Rows), out.TotalRows)
	}
}

func TestHTTPQueryCachedRoundTrip(t *testing.T) {
	svc := New(newTestDB(t, 10), Config{})
	body := `{"query": "proc p write file f as evt return p, f"}`
	first := decodeResult(t, doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query", body))
	if first.Cached {
		t.Fatal("first response cached")
	}
	second := decodeResult(t, doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query", body))
	if !second.Cached {
		t.Fatal("second response not cached")
	}
	if second.TotalRows != first.TotalRows || len(second.Rows) != len(first.Rows) {
		t.Errorf("cached response differs: %d/%d vs %d/%d",
			second.TotalRows, len(second.Rows), first.TotalRows, len(first.Rows))
	}
}

func TestHTTPCheck(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/check",
		`{"query": "proc p write file f as evt return p, f"}`)
	var ok CheckResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil || !ok.OK || ok.Kind != "multievent" {
		t.Fatalf("check: %s (err %v)", rec.Body.String(), err)
	}
	rec = doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/check", `{"query": "bogus"}`)
	var bad CheckResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &bad); err != nil || bad.OK || bad.Error == "" {
		t.Fatalf("check bogus: %s (err %v)", rec.Body.String(), err)
	}
}

func TestHTTPStats(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f"}`)
	rec := doJSON(t, svc.Handler(), http.MethodGet, "/api/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var st DatasetStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Service.Queries != 1 || st.Service.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 1 query / 1 miss", st.Service)
	}
	if st.Store.Events != 5 {
		t.Errorf("store stats report %d events, want 5", st.Store.Events)
	}
	if st.Store.SealedEvents+st.Store.MemtableEvents != st.Store.Events {
		t.Errorf("segment accounting: sealed %d + memtable %d != %d",
			st.Store.SealedEvents, st.Store.MemtableEvents, st.Store.Events)
	}
}

// TestHTTPExplain: "explain": true returns the scheduled plan instead
// of rows.
func TestHTTPExplain(t *testing.T) {
	svc := New(newTestDB(t, 20), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt1\nproc p read file g as evt2\nwith evt1 before evt2\nreturn p, f, g", "explain": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decodeResult(t, rec)
	if len(out.Plan) != 2 {
		t.Fatalf("plan has %d entries, want 2: %s", len(out.Plan), rec.Body.String())
	}
	if len(out.Rows) != 0 || out.TotalRows != 0 {
		t.Errorf("explain returned rows: %+v", out)
	}
	for _, e := range out.Plan {
		if e.Alias == "" || e.Estimate < 0 {
			t.Errorf("bad plan entry %+v", e)
		}
	}
	// the write pattern is less selective than nothing, but both aliases
	// must appear in scheduled order
	if out.Plan[0].Alias == out.Plan[1].Alias {
		t.Errorf("duplicate aliases in plan: %+v", out.Plan)
	}
}

// TestHTTPUnknownDataset: naming a dataset on a single-dataset server
// is a 404, not a silent fallback.
func TestHTTPUnknownDataset(t *testing.T) {
	svc := New(newTestDB(t, 5), Config{})
	rec := doJSON(t, svc.Handler(), http.MethodPost, "/api/v1/query",
		`{"query": "proc p write file f as evt return p, f", "dataset": "nope"}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", rec.Code, rec.Body.String())
	}
}
