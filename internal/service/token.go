package service

import (
	"encoding/base64"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Cursor tokens implement stateless pagination over cached results. A
// token pins three things: which query it belongs to (a hash of the
// normalized text, so a token cannot be replayed against a different
// query), which store generation the result was computed over (the
// commit counter, so every page of one cursor chain is served from the
// same snapshot even while writers append), and the row offset of the
// next page.
//
// The service holds no per-cursor state: as long as the generation's
// entry is in the result cache — and each page access refreshes its LRU
// position — pages are O(1) slices of the cached rows. If the entry has
// been evicted and the store has since moved on, the snapshot is gone
// and the token is reported expired (ErrCursorExpired) rather than
// silently re-resolved against newer data, which would mix generations.

// ErrBadCursor reports a malformed cursor token or one that does not
// belong to the submitted query.
var ErrBadCursor = errors.New("service: malformed cursor")

// ErrCursorExpired reports that the snapshot a cursor token pins has
// been evicted and superseded; the client must re-issue the query to
// start a new cursor.
var ErrCursorExpired = errors.New("service: cursor expired, re-issue the query")

// hashQuery fingerprints a normalized query for token binding.
func hashQuery(norm string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(norm))
	return h.Sum64()
}

// encodeCursorToken packs (query hash, store generation, next offset)
// into an opaque URL-safe token.
func encodeCursorToken(qhash, commits uint64, offset int) string {
	raw := fmt.Sprintf("v1:%x:%d:%d", qhash, commits, offset)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// decodeCursorToken unpacks a token produced by encodeCursorToken.
func decodeCursorToken(tok string) (qhash, commits uint64, offset int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%w: %v", ErrBadCursor, err)
	}
	parts := strings.Split(string(raw), ":")
	if len(parts) != 4 || parts[0] != "v1" {
		return 0, 0, 0, ErrBadCursor
	}
	if qhash, err = strconv.ParseUint(parts[1], 16, 64); err != nil {
		return 0, 0, 0, ErrBadCursor
	}
	if commits, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
		return 0, 0, 0, ErrBadCursor
	}
	off, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || off < 0 {
		return 0, 0, 0, ErrBadCursor
	}
	return qhash, commits, int(off), nil
}
