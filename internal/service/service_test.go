package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
	"github.com/aiql/aiql/internal/experiments"
)

// demoRecord fabricates one write event with a unique file per call, so
// every committed record adds exactly one row to demoQuery's result.
func demoRecord(i int) aiql.Record {
	return aiql.Record{
		AgentID: uint32(1 + i%4),
		Subject: aiql.Process{PID: 100, ExeName: "worker.exe", Path: `C:\bin\worker.exe`, User: "alice"},
		Op:      aiql.OpWrite,
		ObjType: aiql.EntityFile,
		ObjFile: aiql.File{Path: fmt.Sprintf(`C:\data\out%d.log`, i)},
		StartTS: int64(i) * int64(time.Second),
		Amount:  uint64(i),
	}
}

const demoQuery = `proc p["%worker.exe"] write file f as evt return p, f`

func newTestDB(t testing.TB, events int) *aiql.DB {
	t.Helper()
	db := aiql.Open()
	recs := make([]aiql.Record, 0, events)
	for i := 0; i < events; i++ {
		recs = append(recs, demoRecord(i))
	}
	db.AppendAll(recs)
	db.Flush()
	return db
}

// fig4DB lazily builds the Fig4 50k-event demo-apt dataset shared by the
// latency-sensitive tests and benchmarks.
var fig4DB = sync.OnceValue(func() *aiql.DB {
	return aiql.FromStore(experiments.BuildStore(experiments.Fig4Dataset(50000, 10, 42)))
})

// fig4Query is an expensive four-pattern investigation query (the
// paper's Query 1 shape) against the demo-apt scenario.
const fig4Query = `(at "05/10/2018")
agentid = 2
proc p1 start proc p2 as evt1
proc p2 read file f1 as evt2
proc p2 write ip i1 as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1, i1`

func TestNormalizeQuery(t *testing.T) {
	cases := []struct {
		name, a, b string
		same       bool
	}{
		{"reformatting hits", "proc p \n\t start  proc q\nreturn p", "proc p start proc q return p", true},
		{"leading and trailing space", "  return p  ", "return p", true},
		{"whitespace inside double-quoted literal is significant", `f["a  b"]`, `f["a b"]`, false},
		{"whitespace inside single-quoted literal is significant", `f['a  b']`, `f['a b']`, false},
		{"escaped quote does not end the literal", `f["a\"  b"] x`, `f["a\" b"] x`, false},
		{"collapse after literal", `f["a b"]   return p`, `f["a b"] return p`, true},
		{"different queries stay different", "return p", "return q", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			na, nb := normalizeQuery(tc.a), normalizeQuery(tc.b)
			if (na == nb) != tc.same {
				t.Errorf("normalize(%q)=%q vs normalize(%q)=%q, want same=%v", tc.a, na, tc.b, nb, tc.same)
			}
		})
	}
}

func TestCacheHitAndInvalidationOnAppend(t *testing.T) {
	db := newTestDB(t, 500)
	svc := New(db, Config{})
	ctx := context.Background()

	first, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if first.Cached {
		t.Fatal("cold query reported cached")
	}
	if first.TotalRows != 500 {
		t.Fatalf("cold query: %d rows, want 500", first.TotalRows)
	}

	// reformatted text must hit the same entry
	warm, err := svc.Do(ctx, Request{Query: "  proc   p[\"%worker.exe\"]\n\twrite file f as evt\nreturn p, f  "})
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if !warm.Cached {
		t.Fatal("repeat query on an unchanged store was not served from cache")
	}
	if warm.TotalRows != first.TotalRows {
		t.Fatalf("cached rows %d != cold rows %d", warm.TotalRows, first.TotalRows)
	}

	// appending invalidates: the commit counter moves, so the next
	// lookup misses and sees the new data
	db.Append(demoRecord(500))
	db.Flush()
	after, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatalf("post-append query: %v", err)
	}
	if after.Cached {
		t.Fatal("query after append served from cache (stale)")
	}
	if after.TotalRows != 501 {
		t.Fatalf("post-append query: %d rows, want 501", after.TotalRows)
	}

	st := svc.Stats()
	if st.CacheHits != 1 || st.Queries != 3 {
		t.Errorf("stats = %+v, want 1 cache hit over 3 queries", st)
	}
}

func TestLimitTruncationShapesNotMutates(t *testing.T) {
	db := newTestDB(t, 100)
	svc := New(db, Config{})
	ctx := context.Background()

	limited, err := svc.Do(ctx, Request{Query: demoQuery, Limit: 7})
	if err != nil {
		t.Fatalf("limited query: %v", err)
	}
	if len(limited.Rows) != 7 || limited.TotalRows != 100 {
		t.Fatalf("limit=7: got %d rows (total %d), want 7 (total 100)", len(limited.Rows), limited.TotalRows)
	}
	// the truncated view must not have shrunk the cached entry
	full, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatalf("full query: %v", err)
	}
	if !full.Cached || len(full.Rows) != 100 {
		t.Fatalf("full query after limited: cached=%v rows=%d, want cached 100 rows", full.Cached, len(full.Rows))
	}
}

func TestLRUEviction(t *testing.T) {
	db := newTestDB(t, 10)
	svc := New(db, Config{CacheEntries: 2})
	ctx := context.Background()
	queries := []string{
		demoQuery,
		`proc p write file f["%out1.log"] as evt return p, f`,
		`proc p write file f["%out2.log"] as evt return p, f`,
	}
	for _, q := range queries {
		if _, err := svc.Do(ctx, Request{Query: q}); err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
	}
	if n := svc.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", n)
	}
	// the least recently used entry (queries[0]) was evicted
	resp, err := svc.Do(ctx, Request{Query: queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("evicted entry still served from cache")
	}
	resp, err = svc.Do(ctx, Request{Query: queries[2]})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("most recently used entry was evicted")
	}
}

func TestAdmissionControl(t *testing.T) {
	db := newTestDB(t, 10)

	t.Run("queue full sheds immediately", func(t *testing.T) {
		svc := New(db, Config{Workers: 1, QueueDepth: 1, QueueWait: 50 * time.Millisecond, CacheEntries: -1})
		svc.sem <- struct{}{} // occupy the only worker
		defer func() { <-svc.sem }()
		svc.queued.Add(1) // occupy the only queue slot
		defer svc.queued.Add(-1)
		if _, err := svc.Do(context.Background(), Request{Query: demoQuery}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("want ErrOverloaded, got %v", err)
		}
	})

	t.Run("queue wait expiry sheds", func(t *testing.T) {
		svc := New(db, Config{Workers: 1, QueueDepth: 4, QueueWait: 30 * time.Millisecond, CacheEntries: -1})
		svc.sem <- struct{}{}
		defer func() { <-svc.sem }()
		start := time.Now()
		_, err := svc.Do(context.Background(), Request{Query: demoQuery})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("want ErrOverloaded, got %v", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Errorf("shedding took %s, want about the queue wait", time.Since(start))
		}
		if st := svc.Stats(); st.Rejected != 1 {
			t.Errorf("rejected = %d, want 1", st.Rejected)
		}
	})

	t.Run("cancelled while queued returns context error", func(t *testing.T) {
		svc := New(db, Config{Workers: 1, QueueDepth: 4, QueueWait: time.Minute, CacheEntries: -1})
		svc.sem <- struct{}{}
		defer func() { <-svc.sem }()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if _, err := svc.Do(ctx, Request{Query: demoQuery}); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want context.DeadlineExceeded, got %v", err)
		}
		// a client deadline expiring in the queue is a timeout, not a
		// service rejection
		if st := svc.Stats(); st.Rejected != 0 || st.Timeouts != 1 {
			t.Errorf("stats = %+v, want 0 rejected / 1 timeout", st)
		}
	})

	t.Run("client disconnect while queued counts as canceled", func(t *testing.T) {
		svc := New(db, Config{Workers: 1, QueueDepth: 4, QueueWait: time.Minute, CacheEntries: -1})
		svc.sem <- struct{}{}
		defer func() { <-svc.sem }()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		if _, err := svc.Do(ctx, Request{Query: demoQuery}); !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if st := svc.Stats(); st.Rejected != 0 || st.Canceled != 1 {
			t.Errorf("stats = %+v, want 0 rejected / 1 canceled", st)
		}
	})

	t.Run("worker release admits the next query", func(t *testing.T) {
		svc := New(db, Config{Workers: 1, QueueDepth: 4, QueueWait: 5 * time.Second, CacheEntries: -1})
		svc.sem <- struct{}{}
		go func() {
			time.Sleep(20 * time.Millisecond)
			<-svc.sem
		}()
		if _, err := svc.Do(context.Background(), Request{Query: demoQuery}); err != nil {
			t.Fatalf("queued query failed after worker release: %v", err)
		}
	})
}

// TestConcurrentClientsWithWriter is the -race stress test: 32 clients
// hammer the service while a writer appends and flushes. Staleness
// invariant: each committed record adds one matching row, so any client
// must observe a non-decreasing row count — a cached result computed
// over an older store version ever being served for a newer one would
// break monotonicity.
func TestConcurrentClientsWithWriter(t *testing.T) {
	const (
		clients       = 32
		perClient     = 40
		initialEvents = 2000
		writerBatches = 50
		batchSize     = 20
	)
	db := newTestDB(t, initialEvents)
	svc := New(db, Config{Workers: 8, QueueDepth: clients * 2, QueueWait: 30 * time.Second})
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	var cachedServed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			last := -1
			for i := 0; i < perClient; i++ {
				resp, err := svc.Do(ctx, Request{Query: demoQuery})
				if err != nil {
					errCh <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
				if resp.TotalRows < last {
					errCh <- fmt.Errorf("client %d: stale result: rows went %d -> %d (cached=%v)", c, last, resp.TotalRows, resp.Cached)
					return
				}
				last = resp.TotalRows
				if resp.Cached {
					cachedServed.Add(1)
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < writerBatches; b++ {
			recs := make([]aiql.Record, 0, batchSize)
			for j := 0; j < batchSize; j++ {
				recs = append(recs, demoRecord(initialEvents+b*batchSize+j))
			}
			db.AppendAll(recs)
			db.Flush()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// quiesced store: one more round trip must be exact and cacheable
	final, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	want := initialEvents + writerBatches*batchSize
	if final.TotalRows != want {
		t.Fatalf("final rows = %d, want %d", final.TotalRows, want)
	}
	repeat, err := svc.Do(ctx, Request{Query: demoQuery})
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if !repeat.Cached || repeat.TotalRows != want {
		t.Fatalf("repeat on quiesced store: cached=%v rows=%d, want cached %d", repeat.Cached, repeat.TotalRows, want)
	}
	t.Logf("stats: %+v (cached responses observed by clients: %d)", svc.Stats(), cachedServed.Load())
}

// TestDeadlineAbortsFig4Scan is the acceptance check: a 1ms deadline
// against the 50k-event Fig4 dataset returns a context-deadline error
// without scanning all partitions. The deadline has provably expired by
// execution time, so the engine must bail out before touching any chunk.
func TestDeadlineAbortsFig4Scan(t *testing.T) {
	db := fig4DB()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // the 1ms deadline has provably fired

	res, err := db.QueryContext(ctx, fig4Query)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if res == nil {
		t.Fatal("want partial result stats, got nil")
	}
	if res.Stats.Partitions != 0 {
		t.Errorf("visited %d partitions despite expired deadline, want 0", res.Stats.Partitions)
	}
	if res.Stats.ScannedEvents != 0 {
		t.Errorf("scanned %d events despite expired deadline, want 0", res.Stats.ScannedEvents)
	}

	// a live (not yet expired) short deadline aborts the scan mid-flight:
	// this query runs for hundreds of milliseconds uncancelled, so a 5ms
	// budget must stop it with only part of the store visited
	ctxLive, cancelLive := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancelLive()
	resLive, err := db.QueryContext(ctxLive, fig4Query)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("live deadline: want context.DeadlineExceeded, got %v", err)
	}
	if resLive.Stats.ScannedEvents >= int64(db.Len()) {
		t.Errorf("live deadline: scanned %d of %d events, want an early abort", resLive.Stats.ScannedEvents, db.Len())
	}

	// the same request through the service surfaces the timeout
	svc := New(db, Config{})
	if _, err := svc.Do(context.Background(), Request{Query: fig4Query, Timeout: 5 * time.Millisecond}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("service: want context.DeadlineExceeded, got %v", err)
	}
	if st := svc.Stats(); st.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", st.Timeouts)
	}
}

// TestWarmCacheSpeedup is the acceptance check that a warm-cache repeat
// of an expensive query on the Fig4 50k-event dataset is at least 10x
// faster than its cold execution.
func TestWarmCacheSpeedup(t *testing.T) {
	svc := New(fig4DB(), Config{})
	ctx := context.Background()

	start := time.Now()
	cold, err := svc.Do(ctx, Request{Query: fig4Query})
	coldTime := time.Since(start)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if cold.Cached {
		t.Fatal("cold query reported cached")
	}

	warmTime := time.Hour
	for i := 0; i < 5; i++ { // best of 5 to shrug off scheduler noise
		start = time.Now()
		warm, err := svc.Do(ctx, Request{Query: fig4Query})
		d := time.Since(start)
		if err != nil {
			t.Fatalf("warm query: %v", err)
		}
		if !warm.Cached {
			t.Fatal("repeat query was not served from cache")
		}
		if warm.TotalRows != cold.TotalRows {
			t.Fatalf("warm rows %d != cold rows %d", warm.TotalRows, cold.TotalRows)
		}
		if d < warmTime {
			warmTime = d
		}
	}
	if warmTime*10 > coldTime {
		t.Errorf("warm cache %v is not >=10x faster than cold %v", warmTime, coldTime)
	}
	t.Logf("cold %v, warm %v (%.0fx)", coldTime, warmTime, float64(coldTime)/float64(warmTime))
}

// BenchmarkColdQuery measures repeated execution with caching disabled —
// the price every repeat pays without the result cache.
func BenchmarkColdQuery(b *testing.B) {
	svc := New(fig4DB(), Config{CacheEntries: -1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(ctx, Request{Query: fig4Query}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmCache measures repeated execution served from the LRU.
func BenchmarkWarmCache(b *testing.B) {
	svc := New(fig4DB(), Config{})
	ctx := context.Background()
	if _, err := svc.Do(ctx, Request{Query: fig4Query}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := svc.Do(ctx, Request{Query: fig4Query})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected cache hit")
		}
	}
}
