package translate

import (
	"fmt"
	"strings"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/graphdb"
	"github.com/aiql/aiql/internal/like"
)

// ToGraphPattern compiles a multievent or dependency query into a graph
// pattern executable by the graphdb matcher. Anomaly queries are not
// expressible as subgraph patterns and are rejected (the paper's case
// study compares investigation queries on Neo4j).
func ToGraphPattern(q ast.Query) (*graphdb.Pattern, error) {
	var mq *ast.MultieventQuery
	switch x := q.(type) {
	case *ast.MultieventQuery:
		if _, err := semantic.Check(x); err != nil {
			return nil, err
		}
		mq = x
	case *ast.DependencyQuery:
		if _, err := semantic.Check(x); err != nil {
			return nil, err
		}
		rw, err := engine.RewriteDependency(x)
		if err != nil {
			return nil, err
		}
		if _, err := semantic.Check(rw); err != nil {
			return nil, err
		}
		mq = rw
	case *ast.AnomalyQuery:
		return nil, fmt.Errorf("translate: anomaly queries have no graph-pattern equivalent (sliding-window aggregation)")
	default:
		return nil, fmt.Errorf("translate: unsupported query type %T", q)
	}
	info, err := semantic.Check(mq)
	if err != nil {
		return nil, err
	}

	p := &graphdb.Pattern{Distinct: mq.Distinct}
	nodeSeen := map[string]bool{}
	addNode := func(ref *ast.EntityRef) error {
		if nodeSeen[ref.Name] {
			return nil
		}
		nodeSeen[ref.Name] = true
		np := graphdb.NodePattern{Var: ref.Name, Label: labelFor(ref.Type)}
		for _, f := range ref.Filters {
			pred, err := propPred(f)
			if err != nil {
				return err
			}
			np.Preds = append(np.Preds, pred)
		}
		p.Nodes = append(p.Nodes, np)
		return nil
	}
	for i := range mq.Patterns {
		pat := &mq.Patterns[i]
		if err := addNode(&pat.Subject); err != nil {
			return nil, err
		}
		if err := addNode(&pat.Object); err != nil {
			return nil, err
		}
		ep := graphdb.EdgePattern{
			Alias:   pat.Alias,
			FromVar: pat.Subject.Name,
			ToVar:   pat.Object.Name,
			Types:   append([]string{}, pat.Ops...),
		}
		if w := mq.Head_.Window; w != nil {
			if w.From != 0 {
				ep.Preds = append(ep.Preds, graphdb.PropPred{Prop: "start_ts", Op: graphdb.CmpGE, Val: graphdb.NumProp(w.From)})
			}
			if w.To != 0 {
				ep.Preds = append(ep.Preds, graphdb.PropPred{Prop: "start_ts", Op: graphdb.CmpLT, Val: graphdb.NumProp(w.To)})
			}
		}
		for _, f := range mq.Head_.Globals {
			pred, err := evtPropPred(f)
			if err != nil {
				return nil, err
			}
			ep.Preds = append(ep.Preds, pred)
		}
		for _, f := range pat.EvtFilters {
			pred, err := evtPropPred(f)
			if err != nil {
				return nil, err
			}
			ep.Preds = append(ep.Preds, pred)
		}
		p.Edges = append(p.Edges, ep)
	}
	for _, w := range mq.With {
		switch c := w.(type) {
		case ast.TemporalRel:
			l, r := c.Left, c.Right
			if c.Op == "after" {
				l, r = r, l
			}
			// edges carry "ord", the dense (start_ts, id) rank, so event
			// order is one integer comparison
			p.Rels = append(p.Rels, graphdb.EdgeRel{
				LeftEdge: l, LeftProp: "ord", Op: graphdb.CmpLT,
				RightEdge: r, RightProp: "ord",
			})
			if c.Within > 0 {
				p.Rels = append(p.Rels, graphdb.EdgeRel{
					LeftEdge: r, LeftProp: "start_ts", Op: graphdb.CmpLE,
					RightEdge: l, RightProp: "start_ts", Offset: int64(c.Within),
				})
			}
		case ast.EventCond:
			pred, err := evtPropPred(ast.Filter{Attr: c.Attr, Op: c.Op, Val: c.Val})
			if err != nil {
				return nil, err
			}
			for i := range p.Edges {
				if p.Edges[i].Alias == c.Event {
					p.Edges[i].Preds = append(p.Edges[i].Preds, pred)
				}
			}
		}
	}
	for i, it := range mq.Return {
		ri, err := returnGraphItem(it, i, info)
		if err != nil {
			return nil, err
		}
		p.Return = append(p.Return, ri)
	}
	return p, nil
}

func propPred(f ast.Filter) (graphdb.PropPred, error) {
	pred := graphdb.PropPred{Prop: f.Attr, Op: graphCmp(f.Op)}
	if f.Val.IsNum {
		pred.Val = graphdb.NumProp(int64(f.Val.Num))
	} else {
		pred.Val = graphdb.StrProp(f.Val.Str)
	}
	return pred, nil
}

func evtPropPred(f ast.Filter) (graphdb.PropPred, error) {
	pred := graphdb.PropPred{Prop: eventColumn(f.Attr), Op: graphCmp(f.Op)}
	if f.Val.IsNum {
		pred.Val = graphdb.NumProp(int64(f.Val.Num))
	} else {
		pred.Val = graphdb.StrProp(f.Val.Str)
	}
	return pred, nil
}

func graphCmp(op ast.CmpOp) graphdb.CmpOp {
	switch op {
	case ast.CmpEQ:
		return graphdb.CmpEQ
	case ast.CmpNEQ:
		return graphdb.CmpNEQ
	case ast.CmpLT:
		return graphdb.CmpLT
	case ast.CmpLE:
		return graphdb.CmpLE
	case ast.CmpGT:
		return graphdb.CmpGT
	case ast.CmpGE:
		return graphdb.CmpGE
	default:
		return graphdb.CmpLike
	}
}

func returnGraphItem(it ast.ReturnItem, pos int, info *semantic.Info) (graphdb.ReturnItem, error) {
	label := it.Alias
	switch x := it.Expr.(type) {
	case *ast.AttrExpr:
		if label == "" {
			label = ast.ExprString(x)
		}
		if _, ok := info.Vars[x.Var]; ok {
			return graphdb.ReturnItem{Var: x.Var, Prop: x.Attr, Label: label}, nil
		}
		if _, ok := info.Events[x.Var]; ok {
			return graphdb.ReturnItem{Var: x.Var, Prop: eventColumn(x.Attr), IsEdge: true, Label: label}, nil
		}
		return graphdb.ReturnItem{}, fmt.Errorf("translate: unknown variable %q", x.Var)
	case *ast.VarExpr:
		if label == "" {
			label = x.Name
		}
		if _, ok := info.Events[x.Name]; ok {
			return graphdb.ReturnItem{Var: x.Name, Prop: "id", IsEdge: true, Label: label}, nil
		}
		return graphdb.ReturnItem{}, fmt.Errorf("translate: unresolved variable %q", x.Name)
	default:
		return graphdb.ReturnItem{}, fmt.Errorf("translate: unsupported return expression %s", ast.ExprString(it.Expr))
	}
}

// ToCypher renders a multievent or dependency query as Cypher text, used
// by the conciseness experiment (E4). The text follows Neo4j conventions:
// MATCH patterns, WHERE with '=~' regex filters for LIKE patterns, and a
// RETURN clause.
func ToCypher(q ast.Query) (string, error) {
	var mq *ast.MultieventQuery
	switch x := q.(type) {
	case *ast.MultieventQuery:
		if _, err := semantic.Check(x); err != nil {
			return "", err
		}
		mq = x
	case *ast.DependencyQuery:
		if _, err := semantic.Check(x); err != nil {
			return "", err
		}
		rw, err := engine.RewriteDependency(x)
		if err != nil {
			return "", err
		}
		if _, err := semantic.Check(rw); err != nil {
			return "", err
		}
		mq = rw
	default:
		return "", fmt.Errorf("translate: Cypher translation supports multievent and dependency queries")
	}
	info, err := semantic.Check(mq)
	if err != nil {
		return "", err
	}

	var match []string
	var where []string
	nodeRendered := map[string]bool{}
	renderNode := func(ref *ast.EntityRef) string {
		if nodeRendered[ref.Name] {
			return "(" + ref.Name + ")"
		}
		nodeRendered[ref.Name] = true
		for _, f := range ref.Filters {
			where = append(where, cypherFilter(ref.Name, f.Attr, f))
		}
		return "(" + ref.Name + ":" + labelFor(ref.Type) + ")"
	}
	for i := range mq.Patterns {
		pat := &mq.Patterns[i]
		ops := make([]string, len(pat.Ops))
		for k, op := range pat.Ops {
			ops[k] = strings.ToUpper(op)
		}
		subj := renderNode(&pat.Subject)
		obj := renderNode(&pat.Object)
		match = append(match, fmt.Sprintf("%s-[%s:%s]->%s", subj, pat.Alias, strings.Join(ops, "|"), obj))
		if w := mq.Head_.Window; w != nil {
			if w.From != 0 {
				where = append(where, fmt.Sprintf("%s.start_ts >= %d", pat.Alias, w.From))
			}
			if w.To != 0 {
				where = append(where, fmt.Sprintf("%s.start_ts < %d", pat.Alias, w.To))
			}
		}
		for _, f := range mq.Head_.Globals {
			where = append(where, cypherFilter(pat.Alias, eventColumn(f.Attr), f))
		}
		for _, f := range pat.EvtFilters {
			where = append(where, cypherFilter(pat.Alias, eventColumn(f.Attr), f))
		}
	}
	for _, w := range mq.With {
		switch c := w.(type) {
		case ast.TemporalRel:
			l, r := c.Left, c.Right
			if c.Op == "after" {
				l, r = r, l
			}
			where = append(where, fmt.Sprintf(
				"(%s.start_ts < %s.start_ts OR (%s.start_ts = %s.start_ts AND %s.id < %s.id))",
				l, r, l, r, l, r))
			if c.Within > 0 {
				where = append(where, fmt.Sprintf("%s.start_ts - %s.start_ts <= %d", r, l, int64(c.Within)))
			}
		case ast.EventCond:
			where = append(where, cypherFilter(c.Event, eventColumn(c.Attr), ast.Filter{Attr: c.Attr, Op: c.Op, Val: c.Val}))
		}
	}

	var b strings.Builder
	b.WriteString("MATCH ")
	b.WriteString(strings.Join(match, ",\n      "))
	if len(where) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(where, "\n  AND "))
	}
	b.WriteString("\nRETURN ")
	if mq.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range mq.Return {
		if i > 0 {
			b.WriteString(", ")
		}
		switch x := it.Expr.(type) {
		case *ast.AttrExpr:
			var prop string
			if _, ok := info.Vars[x.Var]; ok {
				prop = x.Attr
			} else {
				prop = eventColumn(x.Attr)
			}
			fmt.Fprintf(&b, "%s.%s", x.Var, prop)
		case *ast.VarExpr:
			fmt.Fprintf(&b, "%s.id", x.Name)
		default:
			b.WriteString(ast.ExprString(it.Expr))
		}
		if it.Alias != "" {
			fmt.Fprintf(&b, " AS %s", it.Alias)
		}
	}
	return b.String(), nil
}

// cypherFilter renders one property filter in Cypher syntax. LIKE
// patterns become '=~' regex matches, the Neo4j idiom.
func cypherFilter(varName, prop string, f ast.Filter) string {
	if f.Op == ast.CmpLike && !f.Val.IsNum {
		return fmt.Sprintf("%s.%s =~ '%s'", varName, prop, strings.ReplaceAll(like.ToRegexp(f.Val.Str), `'`, `\'`))
	}
	val := sqlValue(f.Val)
	op := cmpSQL(f.Op)
	if op == "LIKE" {
		op = "="
	}
	return fmt.Sprintf("%s.%s %s %s", varName, prop, op, val)
}
