package translate

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/graphdb"
	"github.com/aiql/aiql/internal/relational"
	"github.com/aiql/aiql/internal/sysmon"
)

var base = time.Date(2018, 5, 10, 9, 0, 0, 0, time.UTC)

func ts(min int) int64 { return base.Add(time.Duration(min) * time.Minute).UnixNano() }

func proc(name string) sysmon.Process {
	return sysmon.Process{PID: 100, ExeName: name, Path: `C:\bin\` + name, User: "alice"}
}

func buildStore(t *testing.T) *eventstore.Store {
	t.Helper()
	s := eventstore.New(eventstore.DefaultOptions())
	conn129 := sysmon.Netconn{SrcIP: "10.0.0.7", SrcPort: 31000, DstIP: "203.0.113.129", DstPort: 443, Protocol: "tcp"}
	connWeb := sysmon.Netconn{SrcIP: "10.0.0.1", SrcPort: 40000, DstIP: "10.0.0.2", DstPort: 80, Protocol: "tcp"}
	recs := []eventstore.Record{
		{AgentID: 7, Subject: proc("cmd.exe"), Op: sysmon.OpStart, ObjProc: proc("osql.exe"), StartTS: ts(1)},
		{AgentID: 7, Subject: proc("sqlservr.exe"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\data\backup1.dmp`}, StartTS: ts(2), Amount: 9000},
		{AgentID: 7, Subject: proc("sbblv.exe"), Op: sysmon.OpRead, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\data\backup1.dmp`}, StartTS: ts(3), Amount: 9000},
		{AgentID: 7, Subject: proc("sbblv.exe"), Op: sysmon.OpWrite, ObjType: sysmon.EntityNetconn,
			ObjConn: conn129, StartTS: ts(4), Amount: 9000},
		{AgentID: 7, Subject: proc("backup.exe"), Op: sysmon.OpRead, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\data\backup1.dmp`}, StartTS: ts(0), Amount: 10},
		{AgentID: 1, Subject: proc("cp"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: "/var/www/info_stealer.sh"}, StartTS: ts(1)},
		{AgentID: 1, Subject: proc("apache2"), Op: sysmon.OpRead, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: "/var/www/info_stealer.sh"}, StartTS: ts(2)},
		{AgentID: 1, Subject: proc("apache2"), Op: sysmon.OpConnect, ObjType: sysmon.EntityNetconn,
			ObjConn: connWeb, StartTS: ts(3)},
		{AgentID: 2, Subject: proc("wget"), Op: sysmon.OpAccept, ObjType: sysmon.EntityNetconn,
			ObjConn: connWeb, StartTS: ts(4)},
		{AgentID: 2, Subject: proc("wget"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: "/tmp/info_stealer.sh"}, StartTS: ts(5)},
		{AgentID: 3, Subject: proc("cmd.exe"), Op: sysmon.OpStart, ObjProc: proc("notepad.exe"), StartTS: ts(1)},
		{AgentID: 3, Subject: proc("svchost.exe"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\Windows\log.txt`}, StartTS: ts(2), Amount: 64},
	}
	s.AppendAll(recs)
	s.Flush()
	return s
}

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\t")
	}
	sort.Strings(out)
	return out
}

// queries exercised across all three engines.
var crossQueries = []struct {
	name string
	src  string
	sql  bool // run on the relational engine
	gra  bool // run on the graph engine
}{
	{
		name: "query1-exfiltration",
		src: `
agentid = 7
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="%.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1`,
		sql: true, gra: true,
	},
	{
		name: "file-readers-with-order",
		src: `
agentid = 7
proc w["%sqlservr.exe"] write file f["%backup1.dmp"] as evt1
proc r read file f as evt2
with evt1 before evt2
return distinct r, f`,
		sql: true, gra: true,
	},
	{
		name: "dependency-forward",
		src: `
forward: proc p1["%cp%", agentid = 1] ->[write] file f1["%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid = 2]
->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2`,
		sql: true, gra: true,
	},
	{
		name: "time-windowed",
		src: `
(from "05/10/2018 09:00:00" to "05/10/2018 09:03:00")
proc p read || write file f as evt
return distinct p, f`,
		sql: true, gra: true,
	},
	{
		name: "amount-filter",
		src: `
proc p write ip i as evt
with evt.amount > 1000
return distinct p, i`,
		sql: true, gra: true,
	},
	{
		name: "anomaly-tumbling",
		src: `
(from "05/10/2018 09:00:00" to "05/10/2018 09:10:00")
agentid = 7
window = 1 min, step = 1 min
proc p read file f as evt
return p, avg(evt.amount) as amt
group by p
having amt > 0`,
		sql: true, gra: false,
	},
}

func TestCrossEngineEquivalence(t *testing.T) {
	store := buildStore(t)
	eng := engine.New(store)

	rdb := relational.Open(true)
	if err := LoadRelational(rdb, store); err != nil {
		t.Fatalf("LoadRelational: %v", err)
	}
	g := graphdb.New()
	if err := LoadGraph(g, store); err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}

	for _, tc := range crossQueries {
		t.Run(tc.name, func(t *testing.T) {
			res, err := eng.Execute(context.Background(), tc.src)
			if err != nil {
				t.Fatalf("AIQL execute: %v", err)
			}
			want := sortedRows(res.Rows)

			q, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if tc.sql {
				sqlText, err := ToSQL(q)
				if err != nil {
					t.Fatalf("ToSQL: %v", err)
				}
				rows, err := rdb.Query(sqlText)
				if err != nil {
					t.Fatalf("SQL execute: %v\nSQL:\n%s", err, sqlText)
				}
				got := sortedRows(rows.RenderStrings())
				if !reflect.DeepEqual(got, want) {
					t.Errorf("SQL mismatch:\nAIQL: %v\nSQL:  %v\nquery:\n%s", want, got, sqlText)
				}
			}
			if tc.gra {
				q2, err := parser.Parse(tc.src)
				if err != nil {
					t.Fatalf("reparse: %v", err)
				}
				pat, err := ToGraphPattern(q2)
				if err != nil {
					t.Fatalf("ToGraphPattern: %v", err)
				}
				gres, err := g.Match(pat)
				if err != nil {
					t.Fatalf("graph match: %v", err)
				}
				got := sortedRows(gres.Rows)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("graph mismatch:\nAIQL:  %v\ngraph: %v", want, got)
				}
			}
		})
	}
}

func TestCypherGeneration(t *testing.T) {
	q, err := parser.Parse(crossQueries[0].src)
	if err != nil {
		t.Fatal(err)
	}
	cy, err := ToCypher(q)
	if err != nil {
		t.Fatalf("ToCypher: %v", err)
	}
	for _, frag := range []string{"MATCH", "RETURN DISTINCT", "p1:Process", "f1:File", "=~", "READ|WRITE"} {
		if !strings.Contains(cy, frag) {
			t.Errorf("Cypher missing %q:\n%s", frag, cy)
		}
	}
}

func TestAnomalySQLRejectsOverlappingWindows(t *testing.T) {
	q, err := parser.Parse(`
(from "05/10/2018 09:00:00" to "05/10/2018 09:10:00")
window = 1 min, step = 10 sec
proc p write ip i as evt
return p, avg(evt.amount) as amt
group by p
having amt > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToSQL(q); err == nil {
		t.Fatal("expected ToSQL to reject overlapping windows")
	}
}

func TestGraphPatternRejectsAnomaly(t *testing.T) {
	q, err := parser.Parse(`
window = 1 min, step = 1 min
proc p write ip i as evt
return p, avg(evt.amount) as amt`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToGraphPattern(q); err == nil {
		t.Fatal("expected ToGraphPattern to reject anomaly queries")
	}
}

func TestLoadRelationalSchema(t *testing.T) {
	store := buildStore(t)
	db := relational.Open(false)
	if err := LoadRelational(db, store); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"events", "processes", "files", "netconns"} {
		tb, ok := db.Table(name)
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		if tb.Len() == 0 {
			t.Errorf("table %s is empty", name)
		}
	}
	ev, _ := db.Table("events")
	if ev.Len() != store.Len() {
		t.Errorf("events table has %d rows, store has %d", ev.Len(), store.Len())
	}
}

func TestLoadGraphCounts(t *testing.T) {
	store := buildStore(t)
	g := graphdb.New()
	if err := LoadGraph(g, store); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != store.Len() {
		t.Errorf("graph has %d edges, store has %d events", g.NumEdges(), store.Len())
	}
	dict := store.Dict()
	wantNodes := dict.Count(sysmon.EntityProcess) + dict.Count(sysmon.EntityFile) + dict.Count(sysmon.EntityNetconn)
	if g.NumNodes() != wantNodes {
		t.Errorf("graph has %d nodes, want %d", g.NumNodes(), wantNodes)
	}
}
