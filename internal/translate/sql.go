package translate

import (
	"fmt"
	"strings"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/numfmt"
)

// ToSQL compiles an AIQL query to a semantically equivalent SQL statement
// against the schema produced by LoadRelational. Dependency queries are
// rewritten to multievent form first; anomaly queries translate to a
// bucketed aggregate with lagged self-joins and require window == step
// (tumbling windows) plus an explicit time window.
func ToSQL(q ast.Query) (string, error) {
	switch x := q.(type) {
	case *ast.MultieventQuery:
		info, err := semantic.Check(x)
		if err != nil {
			return "", err
		}
		return multieventSQL(x, info)
	case *ast.DependencyQuery:
		if _, err := semantic.Check(x); err != nil {
			return "", err
		}
		mq, err := engine.RewriteDependency(x)
		if err != nil {
			return "", err
		}
		info, err := semantic.Check(mq)
		if err != nil {
			return "", err
		}
		return multieventSQL(mq, info)
	case *ast.AnomalyQuery:
		info, err := semantic.Check(x)
		if err != nil {
			return "", err
		}
		return anomalySQL(x, info)
	default:
		return "", fmt.Errorf("translate: unsupported query type %T", q)
	}
}

func sqlQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func sqlValue(v ast.Value) string {
	if v.IsNum {
		return numfmt.Format(v.Num)
	}
	return sqlQuote(v.Str)
}

func cmpSQL(op ast.CmpOp) string {
	switch op {
	case ast.CmpEQ:
		return "="
	case ast.CmpNEQ:
		return "<>"
	case ast.CmpLT:
		return "<"
	case ast.CmpLE:
		return "<="
	case ast.CmpGT:
		return ">"
	case ast.CmpGE:
		return ">="
	case ast.CmpLike:
		return "LIKE"
	default:
		return "="
	}
}

// entityColumn maps a canonical AIQL attribute to its SQL column.
func entityColumn(attr string) string { return attr }

// eventColumn maps an AIQL event attribute to the events-table column.
func eventColumn(attr string) string {
	switch attr {
	case "agent_id":
		return "agentid"
	case "optype", "op":
		return "op"
	case "starttime", "start_time":
		return "start_ts"
	case "endtime", "end_time":
		return "end_ts"
	default:
		return attr
	}
}

// ident lowercases an AIQL variable for use as a SQL alias.
func ident(s string) string { return strings.ToLower(s) }

func multieventSQL(q *ast.MultieventQuery, info *semantic.Info) (string, error) {
	var (
		from  strings.Builder
		where []string
	)
	joined := map[string]bool{}

	entityJoin := func(evAlias string, ref *ast.EntityRef, side string) string {
		v := ident(ref.Name)
		if joined[v] {
			where = append(where, fmt.Sprintf("%s.%s = %s.id", evAlias, side, v))
			return ""
		}
		joined[v] = true
		return fmt.Sprintf("\nJOIN %s %s ON %s.%s = %s.id", tableFor(ref.Type), v, evAlias, side, v)
	}

	// per-pattern filters and joins
	for i := range q.Patterns {
		pat := &q.Patterns[i]
		ev := ident(pat.Alias)
		if i == 0 {
			fmt.Fprintf(&from, "FROM events %s", ev)
		} else {
			var conds []string
			if joined[ident(pat.Subject.Name)] {
				conds = append(conds, fmt.Sprintf("%s.subject_id = %s.id", ev, ident(pat.Subject.Name)))
			}
			if joined[ident(pat.Object.Name)] {
				conds = append(conds, fmt.Sprintf("%s.object_id = %s.id", ev, ident(pat.Object.Name)))
			}
			if len(conds) == 0 {
				fmt.Fprintf(&from, "\nCROSS JOIN events %s", ev)
			} else {
				fmt.Fprintf(&from, "\nJOIN events %s ON %s", ev, strings.Join(conds, " AND "))
			}
		}
		if j := entityJoin(ev, &pat.Subject, "subject_id"); j != "" {
			from.WriteString(j)
		}
		if j := entityJoin(ev, &pat.Object, "object_id"); j != "" {
			from.WriteString(j)
		}

		// operations and object type
		if len(pat.Ops) == 1 {
			where = append(where, fmt.Sprintf("%s.op = %s", ev, sqlQuote(pat.Ops[0])))
		} else {
			parts := make([]string, len(pat.Ops))
			for k, op := range pat.Ops {
				parts[k] = fmt.Sprintf("%s.op = %s", ev, sqlQuote(op))
			}
			where = append(where, "("+strings.Join(parts, " OR ")+")")
		}
		where = append(where, fmt.Sprintf("%s.object_type = %s", ev, sqlQuote(objectTypeName(pat.Object.Type))))

		// global constraints apply to every event
		if w := q.Head_.Window; w != nil {
			if w.From != 0 {
				where = append(where, fmt.Sprintf("%s.start_ts >= %d", ev, w.From))
			}
			if w.To != 0 {
				where = append(where, fmt.Sprintf("%s.start_ts < %d", ev, w.To))
			}
		}
		for _, f := range q.Head_.Globals {
			where = append(where, fmt.Sprintf("%s.%s %s %s", ev, eventColumn(f.Attr), cmpSQL(f.Op), sqlValue(f.Val)))
		}
		for _, f := range pat.EvtFilters {
			where = append(where, fmt.Sprintf("%s.%s %s %s", ev, eventColumn(f.Attr), cmpSQL(f.Op), sqlValue(f.Val)))
		}
	}

	// entity attribute filters (first occurrence carries them)
	emitted := map[string]bool{}
	for i := range q.Patterns {
		for _, ref := range []*ast.EntityRef{&q.Patterns[i].Subject, &q.Patterns[i].Object} {
			v := ident(ref.Name)
			if emitted[v] {
				continue
			}
			emitted[v] = true
			for _, f := range ref.Filters {
				where = append(where, fmt.Sprintf("%s.%s %s %s", v, entityColumn(f.Attr), cmpSQL(f.Op), sqlValue(f.Val)))
			}
		}
	}

	// with clause
	for _, w := range q.With {
		switch c := w.(type) {
		case ast.TemporalRel:
			l, r := ident(c.Left), ident(c.Right)
			if c.Op == "after" {
				l, r = r, l
			}
			where = append(where, fmt.Sprintf(
				"(%s.start_ts < %s.start_ts OR (%s.start_ts = %s.start_ts AND %s.id < %s.id))",
				l, r, l, r, l, r))
			if c.Within > 0 {
				where = append(where, fmt.Sprintf("%s.start_ts - %s.start_ts <= %d", r, l, int64(c.Within)))
			}
		case ast.EventCond:
			where = append(where, fmt.Sprintf("%s.%s %s %s",
				ident(c.Event), eventColumn(c.Attr), cmpSQL(c.Op), sqlValue(c.Val)))
		}
	}

	// select list
	var sel strings.Builder
	sel.WriteString("SELECT ")
	if q.Distinct {
		sel.WriteString("DISTINCT ")
	}
	for i, it := range q.Return {
		if i > 0 {
			sel.WriteString(", ")
		}
		col, err := returnColumnSQL(it.Expr, info)
		if err != nil {
			return "", err
		}
		sel.WriteString(col)
		sel.WriteString(" AS ")
		sel.WriteString(returnAliasSQL(it, i))
	}

	var b strings.Builder
	b.WriteString(sel.String())
	b.WriteString("\n")
	b.WriteString(from.String())
	if len(where) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(where, "\n  AND "))
	}
	return b.String(), nil
}

func returnColumnSQL(e ast.Expr, info *semantic.Info) (string, error) {
	switch x := e.(type) {
	case *ast.AttrExpr:
		if _, ok := info.Vars[x.Var]; ok {
			return ident(x.Var) + "." + entityColumn(x.Attr), nil
		}
		if _, ok := info.Events[x.Var]; ok {
			return ident(x.Var) + "." + eventColumn(x.Attr), nil
		}
		return "", fmt.Errorf("translate: unknown variable %q", x.Var)
	case *ast.VarExpr:
		if _, ok := info.Events[x.Name]; ok {
			return ident(x.Name) + ".id", nil
		}
		return "", fmt.Errorf("translate: unresolved variable %q", x.Name)
	case *ast.NumberLit:
		return numfmt.Format(x.Val), nil
	case *ast.StringLit:
		return sqlQuote(x.Val), nil
	default:
		return "", fmt.Errorf("translate: unsupported return expression %s", ast.ExprString(e))
	}
}

func returnAliasSQL(it ast.ReturnItem, pos int) string {
	if it.Alias != "" {
		return ident(it.Alias)
	}
	if a, ok := it.Expr.(*ast.AttrExpr); ok {
		return ident(a.Var) + "_" + a.Attr
	}
	return fmt.Sprintf("col%d", pos+1)
}

// anomalySQL translates an anomaly query into bucketed-aggregate SQL:
// an inner GROUP BY over FLOOR((start_ts - from)/step) buckets, LEFT
// self-joins for each historical lag the having clause references, and a
// COALESCE-guarded translation of the having expression.
func anomalySQL(q *ast.AnomalyQuery, info *semantic.Info) (string, error) {
	if q.Window != q.Step {
		return "", fmt.Errorf("translate: SQL translation requires tumbling windows (window == step); AIQL evaluates overlapping windows natively")
	}
	w := q.Head_.Window
	if w == nil || w.From == 0 || w.To == 0 {
		return "", fmt.Errorf("translate: SQL translation of an anomaly query needs an explicit time window")
	}
	ev := ident(q.Pattern.Alias)
	subj := ident(q.Pattern.Subject.Name)
	obj := ident(q.Pattern.Object.Name)

	// group expressions (default: non-aggregate return items)
	var groupExprs []ast.Expr
	if len(q.GroupBy) > 0 {
		groupExprs = q.GroupBy
	} else {
		for _, it := range q.Return {
			if _, isAgg := it.Expr.(*ast.CallExpr); !isAgg {
				groupExprs = append(groupExprs, it.Expr)
			}
		}
	}
	groupCols := make([]string, len(groupExprs))
	for i, g := range groupExprs {
		col, err := returnColumnSQL(g, info)
		if err != nil {
			return "", err
		}
		groupCols[i] = col
	}

	// aggregates from the return clause
	type aggDef struct {
		alias string
		sql   string
	}
	var aggs []aggDef
	for _, it := range q.Return {
		call, ok := it.Expr.(*ast.CallExpr)
		if !ok {
			continue
		}
		alias := it.Alias
		if alias == "" {
			alias = call.Func
		}
		var argSQL string
		if call.Func == "count" {
			argSQL = "*"
		} else {
			col, err := returnColumnSQL(call.Arg, info)
			if err != nil {
				return "", err
			}
			argSQL = col
		}
		aggs = append(aggs, aggDef{alias: ident(alias), sql: strings.ToUpper(call.Func) + "(" + argSQL + ")"})
	}

	// inner bucketed aggregate
	var inner strings.Builder
	inner.WriteString("SELECT ")
	for i, col := range groupCols {
		fmt.Fprintf(&inner, "%s AS g%d, ", col, i)
	}
	fmt.Fprintf(&inner, "FLOOR((%s.start_ts - %d) / %d) AS win", ev, w.From, int64(q.Step))
	for _, a := range aggs {
		fmt.Fprintf(&inner, ", %s AS %s", a.sql, a.alias)
	}
	fmt.Fprintf(&inner, "\n  FROM events %s", ev)
	fmt.Fprintf(&inner, "\n  JOIN %s %s ON %s.subject_id = %s.id", tableFor(q.Pattern.Subject.Type), subj, ev, subj)
	if obj != subj {
		fmt.Fprintf(&inner, "\n  JOIN %s %s ON %s.object_id = %s.id", tableFor(q.Pattern.Object.Type), obj, ev, obj)
	}
	var where []string
	if len(q.Pattern.Ops) == 1 {
		where = append(where, fmt.Sprintf("%s.op = %s", ev, sqlQuote(q.Pattern.Ops[0])))
	} else {
		parts := make([]string, len(q.Pattern.Ops))
		for k, op := range q.Pattern.Ops {
			parts[k] = fmt.Sprintf("%s.op = %s", ev, sqlQuote(op))
		}
		where = append(where, "("+strings.Join(parts, " OR ")+")")
	}
	where = append(where, fmt.Sprintf("%s.object_type = %s", ev, sqlQuote(objectTypeName(q.Pattern.Object.Type))))
	where = append(where, fmt.Sprintf("%s.start_ts >= %d", ev, w.From))
	where = append(where, fmt.Sprintf("%s.start_ts < %d", ev, w.To))
	for _, f := range q.Head_.Globals {
		where = append(where, fmt.Sprintf("%s.%s %s %s", ev, eventColumn(f.Attr), cmpSQL(f.Op), sqlValue(f.Val)))
	}
	for _, f := range q.Pattern.EvtFilters {
		where = append(where, fmt.Sprintf("%s.%s %s %s", ev, eventColumn(f.Attr), cmpSQL(f.Op), sqlValue(f.Val)))
	}
	for _, ref := range []*ast.EntityRef{&q.Pattern.Subject, &q.Pattern.Object} {
		for _, f := range ref.Filters {
			where = append(where, fmt.Sprintf("%s.%s %s %s", ident(ref.Name), entityColumn(f.Attr), cmpSQL(f.Op), sqlValue(f.Val)))
		}
	}
	inner.WriteString("\n  WHERE ")
	inner.WriteString(strings.Join(where, " AND "))
	inner.WriteString("\n  GROUP BY ")
	for i, col := range groupCols {
		if i > 0 {
			inner.WriteString(", ")
		}
		inner.WriteString(col)
	}
	if len(groupCols) > 0 {
		inner.WriteString(", ")
	}
	fmt.Fprintf(&inner, "FLOOR((%s.start_ts - %d) / %d)", ev, w.From, int64(q.Step))

	// lags the having clause references
	lags := map[int]bool{}
	collectLags(q.Having, lags)
	maxLag := 0
	var lagList []int
	for l := range lags {
		lagList = append(lagList, l)
		if l > maxLag {
			maxLag = l
		}
	}

	var b strings.Builder
	b.WriteString("SELECT DISTINCT ")
	gi, emitted := 0, 0
	for _, it := range q.Return {
		if emitted > 0 {
			b.WriteString(", ")
		}
		emitted++
		if call, ok := it.Expr.(*ast.CallExpr); ok {
			alias := it.Alias
			if alias == "" {
				alias = call.Func
			}
			fmt.Fprintf(&b, "b0.%s AS %s", ident(alias), ident(alias))
		} else {
			fmt.Fprintf(&b, "b0.g%d AS %s", gi, returnAliasSQL(it, gi))
			gi++
		}
	}
	b.WriteString("\nFROM (")
	b.WriteString(inner.String())
	b.WriteString(") b0")
	for _, l := range sortedInts(lagList) {
		fmt.Fprintf(&b, "\nLEFT JOIN (%s) b%d ON b%d.win = b0.win - %d", inner.String(), l, l, l)
		for i := range groupCols {
			fmt.Fprintf(&b, " AND b%d.g%d = b0.g%d", l, i, i)
		}
	}
	var outer []string
	if maxLag > 0 {
		outer = append(outer, fmt.Sprintf("b0.win >= %d", maxLag))
	}
	if q.Having != nil {
		h, err := havingSQL(q.Having)
		if err != nil {
			return "", err
		}
		outer = append(outer, h)
	}
	if len(outer) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(outer, " AND "))
	}
	return b.String(), nil
}

func collectLags(e ast.Expr, out map[int]bool) {
	switch x := e.(type) {
	case *ast.HistExpr:
		if x.Lag > 0 {
			out[x.Lag] = true
		}
	case *ast.BinaryExpr:
		collectLags(x.L, out)
		collectLags(x.R, out)
	case *ast.UnaryExpr:
		collectLags(x.X, out)
	}
}

func sortedInts(xs []int) []int {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

// havingSQL translates the having expression: aggregate aliases read from
// b0, lagged aliases read from bN with COALESCE to 0 for missing buckets.
func havingSQL(e ast.Expr) (string, error) {
	switch x := e.(type) {
	case *ast.NumberLit:
		return numfmt.Format(x.Val), nil
	case *ast.VarExpr:
		return "b0." + ident(x.Name), nil
	case *ast.HistExpr:
		if x.Lag == 0 {
			return "b0." + ident(x.Name), nil
		}
		return fmt.Sprintf("COALESCE(b%d.%s, 0)", x.Lag, ident(x.Name)), nil
	case *ast.UnaryExpr:
		sub, err := havingSQL(x.X)
		if err != nil {
			return "", err
		}
		if x.Op == "not" {
			return "NOT (" + sub + ")", nil
		}
		return "-(" + sub + ")", nil
	case *ast.BinaryExpr:
		l, err := havingSQL(x.L)
		if err != nil {
			return "", err
		}
		r, err := havingSQL(x.R)
		if err != nil {
			return "", err
		}
		op := strings.ToUpper(x.Op)
		switch x.Op {
		case "=":
			op = "="
		case "!=":
			op = "<>"
		}
		return "(" + l + " " + op + " " + r + ")", nil
	default:
		return "", fmt.Errorf("translate: unsupported having expression %s", ast.ExprString(e))
	}
}
