// Package translate bridges the AIQL world and the baseline engines: it
// loads an event store into the relational and graph databases, compiles
// AIQL queries into semantically equivalent SQL text, relational queries,
// graph patterns, and Cypher text. The translations power both the
// performance comparisons (Figures 4 and 5) and the query-conciseness
// experiment.
package translate

import (
	"context"
	"fmt"
	"sort"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/graphdb"
	"github.com/aiql/aiql/internal/relational"
	"github.com/aiql/aiql/internal/sysmon"
)

// Relational schema shared by the loader and the SQL generator.
var (
	eventCols = []relational.Column{
		{Name: "id", Type: relational.TypeInt},
		{Name: "agentid", Type: relational.TypeInt},
		{Name: "subject_id", Type: relational.TypeInt},
		{Name: "op", Type: relational.TypeText},
		{Name: "object_type", Type: relational.TypeText},
		{Name: "object_id", Type: relational.TypeInt},
		{Name: "start_ts", Type: relational.TypeInt},
		{Name: "end_ts", Type: relational.TypeInt},
		{Name: "amount", Type: relational.TypeInt},
		{Name: "seq", Type: relational.TypeInt},
	}
	processCols = []relational.Column{
		{Name: "id", Type: relational.TypeInt},
		{Name: "pid", Type: relational.TypeInt},
		{Name: "exe_name", Type: relational.TypeText},
		{Name: "path", Type: relational.TypeText},
		{Name: "user", Type: relational.TypeText},
		{Name: "cmdline", Type: relational.TypeText},
	}
	fileCols = []relational.Column{
		{Name: "id", Type: relational.TypeInt},
		{Name: "name", Type: relational.TypeText},
		{Name: "owner", Type: relational.TypeText},
	}
	netconnCols = []relational.Column{
		{Name: "id", Type: relational.TypeInt},
		{Name: "src_ip", Type: relational.TypeText},
		{Name: "src_port", Type: relational.TypeInt},
		{Name: "dst_ip", Type: relational.TypeText},
		{Name: "dst_port", Type: relational.TypeInt},
		{Name: "protocol", Type: relational.TypeText},
	}
)

// tableFor maps an entity type to its relational table name.
func tableFor(t sysmon.EntityType) string {
	switch t {
	case sysmon.EntityProcess:
		return "processes"
	case sysmon.EntityFile:
		return "files"
	case sysmon.EntityNetconn:
		return "netconns"
	default:
		return ""
	}
}

// objectTypeName is the events.object_type discriminator value.
func objectTypeName(t sysmon.EntityType) string {
	switch t {
	case sysmon.EntityProcess:
		return "process"
	case sysmon.EntityFile:
		return "file"
	case sysmon.EntityNetconn:
		return "netconn"
	default:
		return ""
	}
}

// LoadRelational copies the store's contents into a relational database,
// building indexes when the database is optimized.
func LoadRelational(db *relational.DB, store *eventstore.Store) error {
	events, err := db.CreateTable("events", eventCols)
	if err != nil {
		return err
	}
	procs, err := db.CreateTable("processes", processCols)
	if err != nil {
		return err
	}
	files, err := db.CreateTable("files", fileCols)
	if err != nil {
		return err
	}
	conns, err := db.CreateTable("netconns", netconnCols)
	if err != nil {
		return err
	}
	dict := store.Dict()
	for i := 1; i <= dict.Count(sysmon.EntityProcess); i++ {
		p := dict.Process(sysmon.EntityID(i))
		if err := procs.Insert([]relational.Value{
			relational.Int(int64(i)), relational.Int(int64(p.PID)),
			relational.Str(p.ExeName), relational.Str(p.Path),
			relational.Str(p.User), relational.Str(p.CmdLine),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= dict.Count(sysmon.EntityFile); i++ {
		f := dict.File(sysmon.EntityID(i))
		if err := files.Insert([]relational.Value{
			relational.Int(int64(i)), relational.Str(f.Path), relational.Str(f.Owner),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= dict.Count(sysmon.EntityNetconn); i++ {
		c := dict.Netconn(sysmon.EntityID(i))
		if err := conns.Insert([]relational.Value{
			relational.Int(int64(i)), relational.Str(c.SrcIP), relational.Int(int64(c.SrcPort)),
			relational.Str(c.DstIP), relational.Int(int64(c.DstPort)), relational.Str(c.Protocol),
		}); err != nil {
			return err
		}
	}
	// stream straight off the snapshot: no per-partition event copies
	var insertErr error
	store.Snapshot().Scan(context.Background(), &eventstore.EventFilter{}, func(ev *sysmon.Event) bool {
		insertErr = events.Insert([]relational.Value{
			relational.Int(int64(ev.ID)), relational.Int(int64(ev.AgentID)),
			relational.Int(int64(ev.Subject)), relational.Str(ev.Op.String()),
			relational.Str(objectTypeName(ev.ObjType)), relational.Int(int64(ev.Object)),
			relational.Int(ev.StartTS), relational.Int(ev.EndTS),
			relational.Int(int64(ev.Amount)), relational.Int(int64(ev.Seq)),
		})
		return insertErr == nil
	})
	if insertErr != nil {
		return insertErr
	}
	if db.Optimized() {
		for _, ix := range [][2]string{
			{"events", "agentid"}, {"events", "subject_id"}, {"events", "object_id"},
			{"events", "op"}, {"events", "start_ts"},
			{"processes", "id"}, {"processes", "exe_name"},
			{"files", "id"}, {"files", "name"},
			{"netconns", "id"}, {"netconns", "dst_ip"},
		} {
			if err := db.CreateIndex(ix[0], ix[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// GraphLabels used when loading the property graph.
const (
	LabelProcess = "Process"
	LabelFile    = "File"
	LabelNetconn = "Netconn"
)

// labelFor maps entity types to graph labels.
func labelFor(t sysmon.EntityType) string {
	switch t {
	case sysmon.EntityProcess:
		return LabelProcess
	case sysmon.EntityFile:
		return LabelFile
	case sysmon.EntityNetconn:
		return LabelNetconn
	default:
		return ""
	}
}

// LoadGraph copies the store's contents into a property graph: one node
// per entity, one typed edge per event. Edges carry an "ord" property —
// the event's dense rank in (start_ts, id) order — so temporal relations
// translate to a single integer comparison exactly matching the AIQL
// engine's event order.
func LoadGraph(g *graphdb.Graph, store *eventstore.Store) error {
	dict := store.Dict()
	procNodes := make([]graphdb.NodeID, dict.Count(sysmon.EntityProcess)+1)
	fileNodes := make([]graphdb.NodeID, dict.Count(sysmon.EntityFile)+1)
	connNodes := make([]graphdb.NodeID, dict.Count(sysmon.EntityNetconn)+1)
	for i := 1; i < len(procNodes); i++ {
		p := dict.Process(sysmon.EntityID(i))
		procNodes[i] = g.AddNode(LabelProcess, map[string]graphdb.PropValue{
			"pid":      graphdb.NumProp(int64(p.PID)),
			"exe_name": graphdb.StrProp(p.ExeName),
			"path":     graphdb.StrProp(p.Path),
			"user":     graphdb.StrProp(p.User),
			"cmdline":  graphdb.StrProp(p.CmdLine),
		})
	}
	for i := 1; i < len(fileNodes); i++ {
		f := dict.File(sysmon.EntityID(i))
		fileNodes[i] = g.AddNode(LabelFile, map[string]graphdb.PropValue{
			"name":  graphdb.StrProp(f.Path),
			"owner": graphdb.StrProp(f.Owner),
		})
	}
	for i := 1; i < len(connNodes); i++ {
		c := dict.Netconn(sysmon.EntityID(i))
		connNodes[i] = g.AddNode(LabelNetconn, map[string]graphdb.PropValue{
			"src_ip":   graphdb.StrProp(c.SrcIP),
			"src_port": graphdb.NumProp(int64(c.SrcPort)),
			"dst_ip":   graphdb.StrProp(c.DstIP),
			"dst_port": graphdb.NumProp(int64(c.DstPort)),
			"protocol": graphdb.StrProp(c.Protocol),
		})
	}

	// one collected copy is unavoidable here: graph edge ordinals need a
	// global (start_ts, id) sort before insertion
	events := store.Collect(&eventstore.EventFilter{})
	sort.Slice(events, func(i, j int) bool {
		if events[i].StartTS != events[j].StartTS {
			return events[i].StartTS < events[j].StartTS
		}
		return events[i].ID < events[j].ID
	})
	for ord, ev := range events {
		from := procNodes[ev.Subject]
		var to graphdb.NodeID
		switch ev.ObjType {
		case sysmon.EntityProcess:
			to = procNodes[ev.Object]
		case sysmon.EntityFile:
			to = fileNodes[ev.Object]
		case sysmon.EntityNetconn:
			to = connNodes[ev.Object]
		default:
			return fmt.Errorf("translate: event %d has invalid object type", ev.ID)
		}
		g.AddEdge(from, to, ev.Op.String(), map[string]graphdb.PropValue{
			"id":       graphdb.NumProp(int64(ev.ID)),
			"agentid":  graphdb.NumProp(int64(ev.AgentID)),
			"start_ts": graphdb.NumProp(ev.StartTS),
			"end_ts":   graphdb.NumProp(ev.EndTS),
			"amount":   graphdb.NumProp(int64(ev.Amount)),
			"seq":      graphdb.NumProp(int64(ev.Seq)),
			"ord":      graphdb.NumProp(int64(ord)),
		})
	}
	// schema indexes comparable to Neo4j's: exact lookups on the default
	// attributes
	g.CreateIndex(LabelProcess, "exe_name")
	g.CreateIndex(LabelFile, "name")
	g.CreateIndex(LabelNetconn, "dst_ip")
	return nil
}
