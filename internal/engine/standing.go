package engine

import (
	"context"
	"hash/fnv"
)

// Standing-query evaluation: a prepared statement re-executed after
// every ingest commit, reporting only the rows that are new since the
// previous evaluation. The heavy lifting is the segment scan cache —
// with it installed, a re-execution's per-pattern scans over sealed
// history are cache hits and only memtables and fresh segments are
// actually scanned — so the delta layer here only needs to (a) skip
// evaluations when nothing committed and (b) subtract the rows already
// reported.

// StandingState carries one standing query's evaluation watermark: the
// store commit count at the last evaluation and the set of row
// identities already reported. It is NOT safe for concurrent use; the
// owner (the service's watch registry) serializes evaluations per
// watch.
type StandingState struct {
	commits   uint64
	evaluated bool
	seen      map[uint64]struct{}
}

// NewStandingState returns an empty state: the first evaluation against
// it reports every current match (the baseline).
func NewStandingState() *StandingState {
	return &StandingState{seen: make(map[uint64]struct{})}
}

// Matches returns the number of distinct rows reported so far.
func (st *StandingState) Matches() int { return len(st.seen) }

// DeltaResult is one standing-query evaluation's outcome.
type DeltaResult struct {
	// Columns is the statement's result header.
	Columns []string
	// Fresh holds the rows not seen by any previous evaluation against
	// the same state, in the execution's canonical order.
	Fresh [][]string
	// Total is the full result size of this evaluation (fresh + already
	// seen); 0 when Skipped.
	Total int
	// Skipped reports that the store had no new commits since the last
	// evaluation, so execution was elided entirely.
	Skipped bool
	// Stats carries the underlying execution's counters when the query
	// ran. With the segment scan cache installed, SegmentHits vs
	// SegmentMisses shows how much sealed history was reused rather
	// than re-scanned.
	Stats ExecStats
}

// rowKey hashes a projected row to its identity. 0x1f (unit separator)
// never appears in rendered cells' natural text, making the hash
// unambiguous across cell boundaries. A 64-bit collision would suppress
// one fresh match; at standing-query result sizes the odds are
// negligible, and the alternative — retaining every row — costs 10-100x
// the memory per watch.
func rowKey(row []string) uint64 {
	h := fnv.New64a()
	for _, c := range row {
		h.Write([]byte(c))
		h.Write([]byte{0x1f})
	}
	return h.Sum64()
}

// ExecutePreparedDelta evaluates a standing query incrementally: if the
// store's commit count is unchanged since st's last evaluation the call
// returns immediately with Skipped set; otherwise the statement
// executes (scan-cache-accelerated) and only rows never reported
// against st before come back in Fresh. The commit count is read before
// executing, so a commit racing the execution is never lost — at worst
// the next evaluation re-runs and its duplicates dedupe to nothing.
func (e *Engine) ExecutePreparedDelta(ctx context.Context, p *Prepared, params Params, st *StandingState) (*DeltaResult, error) {
	commits := e.store.Commits()
	if st.evaluated && commits == st.commits {
		return &DeltaResult{Columns: p.Columns(), Skipped: true}, nil
	}
	res, err := e.ExecutePrepared(ctx, p, params)
	if err != nil {
		return nil, err
	}
	d := &DeltaResult{Columns: res.Columns, Total: len(res.Rows), Stats: res.Stats}
	for _, row := range res.Rows {
		k := rowKey(row)
		if _, dup := st.seen[k]; dup {
			continue
		}
		st.seen[k] = struct{}{}
		d.Fresh = append(d.Fresh, row)
	}
	st.commits = commits
	st.evaluated = true
	return d, nil
}
