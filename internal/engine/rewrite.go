package engine

import (
	"fmt"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/sysmon"
)

// RewriteDependency compiles a dependency query into a semantically
// equivalent multievent query (paper §2.3: "For a dependency query, the
// parser compiles it to a semantically equivalent multievent query for
// execution").
//
// Each edge becomes one event pattern. A `->[connect]` edge between two
// process nodes expresses cross-host tracking; it expands into a pair of
// patterns — subject connects to a fresh network connection, and the
// remote process accepts the same connection — joined on the shared
// connection variable, which is how two hosts observe one flow.
//
// The chain's temporal order depends on direction: forward means each
// edge's event happens before the next edge's event; backward reverses
// the order (tracking from symptom back to root cause).
func RewriteDependency(q *ast.DependencyQuery) (*ast.MultieventQuery, error) {
	if len(q.Nodes) != len(q.Edges)+1 {
		return nil, fmt.Errorf("engine: malformed dependency chain")
	}
	out := &ast.MultieventQuery{
		Head_:    q.Head_,
		Return:   q.Return,
		Distinct: q.Distinct,
	}
	// Split each node's filters into entity filters and event filters
	// (e.g. agentid); event filters apply to every pattern the node
	// participates in.
	type nodeInfo struct {
		ref     ast.EntityRef
		evtF    []ast.Filter
		emitted bool
	}
	nodes := make(map[string]*nodeInfo)
	order := make([]*nodeInfo, len(q.Nodes))
	for i := range q.Nodes {
		n := q.Nodes[i]
		if existing, ok := nodes[n.Name]; ok {
			order[i] = existing
			continue
		}
		info := &nodeInfo{ref: n}
		info.ref.Filters = nil
		for _, f := range n.Filters {
			if sysmon.ValidEventAttr(f.Attr) && !sysmon.ValidAttr(n.Type, f.Attr) {
				info.evtF = append(info.evtF, f)
			} else {
				info.ref.Filters = append(info.ref.Filters, f)
			}
		}
		nodes[n.Name] = info
		order[i] = info
	}
	// ref returns the entity reference for a node occurrence: the first
	// use carries type and filters, later uses are bare.
	ref := func(info *nodeInfo) ast.EntityRef {
		if info.emitted {
			return ast.EntityRef{Type: info.ref.Type, Name: info.ref.Name, Pos: info.ref.Pos}
		}
		info.emitted = true
		return info.ref
	}

	var aliases []string // one alias per edge, in chain order
	freshConn := 0
	for i, e := range q.Edges {
		left, right := order[i], order[i+1]
		subj, obj := left, right
		if !e.LeftToRight {
			subj, obj = right, left
		}
		if e.Op == "connect" && obj.ref.Type == sysmon.EntityProcess {
			// cross-host edge: subj connects to conn C, obj accepts C
			freshConn++
			connName := fmt.Sprintf("__dep_conn%d", freshConn)
			connRef := ast.EntityRef{Type: sysmon.EntityNetconn, Name: connName}
			aliasA := fmt.Sprintf("__dep_evt%d_conn", i+1)
			aliasB := fmt.Sprintf("__dep_evt%d_acc", i+1)
			out.Patterns = append(out.Patterns,
				ast.EventPattern{
					Subject:    ref(subj),
					Ops:        []string{"connect"},
					Object:     connRef,
					Alias:      aliasA,
					EvtFilters: subj.evtF,
					Pos:        e.Pos,
				},
				ast.EventPattern{
					Subject:    ref(obj),
					Ops:        []string{"accept"},
					Object:     ast.EntityRef{Type: sysmon.EntityNetconn, Name: connName},
					Alias:      aliasB,
					EvtFilters: obj.evtF,
					Pos:        e.Pos,
				},
			)
			out.With = append(out.With, ast.TemporalRel{Left: aliasA, Op: "before", Right: aliasB, Pos: e.Pos})
			aliases = append(aliases, aliasA) // anchor the chain on the connect event
		} else {
			alias := fmt.Sprintf("__dep_evt%d", i+1)
			evtF := append(append([]ast.Filter{}, subj.evtF...), obj.evtF...)
			out.Patterns = append(out.Patterns, ast.EventPattern{
				Subject:    ref(subj),
				Ops:        []string{e.Op},
				Object:     ref(obj),
				Alias:      alias,
				EvtFilters: evtF,
				Pos:        e.Pos,
			})
			aliases = append(aliases, alias)
		}
	}
	for i := 0; i+1 < len(aliases); i++ {
		rel := ast.TemporalRel{Left: aliases[i], Op: "before", Right: aliases[i+1]}
		if q.Direction == ast.Backward {
			rel = ast.TemporalRel{Left: aliases[i+1], Op: "before", Right: aliases[i]}
		}
		out.With = append(out.With, rel)
	}
	return out, nil
}
