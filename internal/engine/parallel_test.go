package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
	"github.com/aiql/aiql/internal/workpool"
)

// forceParallel installs an unclamped helper pool so the ordered-merge
// executor really fans out, even on a single-core test machine where
// NewWithConfig would clamp the pool to zero helpers.
func forceParallel(e *Engine, helpers int) *Engine {
	e.SetScanPool(workpool.New(helpers))
	return e
}

// TestParallelMatchesSequential locks in the executor's core contract:
// with helpers racing ahead of the merge point, every query must
// produce byte-for-byte the same rows, in the same order, as the plain
// sequential walk.
func TestParallelMatchesSequential(t *testing.T) {
	store := buildWideStore(t, 40000)
	queries := []string{
		wideQuery,
		// multi-pattern join: two patterns share the file entity
		`proc p write file f as evt1
proc p2 write file f as evt2
with evt1 before evt2
return distinct p, f`,
		// windowed aggregation over the full scan
		`window = 1 min, step = 1 min
proc p write file f as evt
return p, count(evt) as c
group by p
having c > 0`,
	}
	seq := NewWithConfig(store, Config{ScanWorkers: 1})
	par := forceParallel(New(store), 3)
	for i, q := range queries {
		want, err := seq.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d sequential: %v", i, err)
		}
		got, err := par.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d parallel: %v", i, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("query %d: parallel rows differ from sequential (%d vs %d rows)", i, len(got.Rows), len(want.Rows))
		}
		if got.Stats.ScannedEvents != want.Stats.ScannedEvents {
			t.Errorf("query %d: parallel visited %d events, sequential %d", i, got.Stats.ScannedEvents, want.Stats.ScannedEvents)
		}
	}
}

// TestParallelCursorLimitMatchesSequential checks limit pushdown under
// parallel fan-out: the first N rows of a paginated stream must be
// exactly the first N rows of the sequential stream, or resumable
// pagination tokens would skip or duplicate rows depending on pool
// size.
func TestParallelCursorLimitMatchesSequential(t *testing.T) {
	store := buildWideStore(t, 40000)
	for _, limit := range []int{1, 37, 500} {
		collect := func(e *Engine) [][]string {
			cur, err := e.ExecuteCursor(context.Background(), wideQuery, CursorOptions{Limit: limit})
			if err != nil {
				t.Fatalf("limit %d: ExecuteCursor: %v", limit, err)
			}
			defer cur.Close()
			var rows [][]string
			for cur.Next() {
				rows = append(rows, append([]string(nil), cur.Row()...))
			}
			if err := cur.Err(); err != nil {
				t.Fatalf("limit %d: cursor: %v", limit, err)
			}
			return rows
		}
		want := collect(NewWithConfig(store, Config{ScanWorkers: 1}))
		got := collect(forceParallel(New(store), 3))
		if len(want) != limit {
			t.Fatalf("limit %d: sequential produced %d rows", limit, len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("limit %d: parallel page differs from sequential page", limit)
		}
	}
}

// TestParallelCancellationMidFanout cancels while helper goroutines
// hold claimed units mid-scan: the executor must abort cleanly —
// helpers awaited, partial stats coherent — rather than hang on a
// done channel or deliver rows past the abort.
func TestParallelCancellationMidFanout(t *testing.T) {
	store := buildWideStore(t, 60000)
	total := int64(store.Len())
	for _, allow := range []int64{2, 8, 64} {
		ctx := newCountdownCtx(allow)
		res, err := forceParallel(New(store), 3).Execute(ctx, wideQuery)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("allow %d: want context.Canceled, got %v", allow, err)
		}
		if res == nil {
			t.Fatalf("allow %d: want partial result, got nil", allow)
		}
		if res.Stats.ScannedEvents >= total {
			t.Errorf("allow %d: visited %d of %d events despite mid-fan-out cancellation", allow, res.Stats.ScannedEvents, total)
		}
	}
}

// TestParallelScanDuringAppendAndSeal races parallel scans against a
// writer that keeps appending and sealing memtables into segments.
// Snapshot isolation means every query sees a consistent prefix: row
// counts observed by one reader never go backwards, and the run is a
// -race exercise of the scan path against concurrent seals.
func TestParallelScanDuringAppendAndSeal(t *testing.T) {
	opts := eventstore.DefaultOptions()
	opts.SegmentEvents = 256 // seal often, so scans race real seals
	store := eventstore.New(opts)
	eng := forceParallel(New(store), 3)

	const writers, batches, perBatch = 1, 40, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			n := 0
			for b := 0; b < batches; b++ {
				recs := make([]eventstore.Record, 0, perBatch)
				for i := 0; i < perBatch; i++ {
					recs = append(recs, eventstore.Record{
						AgentID: uint32(1 + n%8),
						Subject: proc("worker.exe"),
						Op:      sysmon.OpWrite,
						ObjType: sysmon.EntityFile,
						ObjFile: sysmon.File{Path: fmt.Sprintf(`C:\data\out%d.log`, n)},
						StartTS: ts(n / 50),
						Amount:  uint64(n),
					})
					n++
				}
				store.AppendAll(recs)
				if b%4 == 3 {
					store.Flush()
				}
			}
			close(stop)
		}()
	}

	prev := 0
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		res, err := eng.Execute(context.Background(), wideQuery)
		if err != nil {
			t.Fatalf("Execute during ingest: %v", err)
		}
		if len(res.Rows) < prev {
			t.Fatalf("row count went backwards: %d after %d", len(res.Rows), prev)
		}
		prev = len(res.Rows)
	}
	wg.Wait()

	store.Flush()
	res, err := eng.Execute(context.Background(), wideQuery)
	if err != nil {
		t.Fatalf("final Execute: %v", err)
	}
	if want := writers * batches * perBatch; len(res.Rows) != want {
		t.Fatalf("final query saw %d rows, want %d", len(res.Rows), want)
	}
}
