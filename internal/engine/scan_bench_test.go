// Parallel-scan benchmarks behind `make bench-scan` (BENCH_scan.json),
// measuring the scan executor itself on the Fig4 50k-event demo-apt
// dataset — the full-query benchmarks in the repo root fold in plan,
// join, and sort costs that this PR does not touch.
//
//	BenchmarkScanColdSequential   row-at-a-time reference loop
//	BenchmarkScanColdWorkersK     batch/bitmap executor, K workers
//	BenchmarkScanWarmWorkersK     fully scan-cached executor
//
// Cold WorkersK vs Sequential isolates the batch/bitmap speedup (plus
// worker scaling on multi-core hosts; Workers1 is the executor with no
// added concurrency). Warm Workers1 vs Workers4 should be at parity:
// cache hits skip whole scan tasks, so worker count stops mattering.
package engine

import (
	"context"
	"sync"
	"testing"

	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

var (
	scanBenchOnce  sync.Once
	scanBenchStore *eventstore.Store
	scanBenchSink  int
)

// scanBenchSetup builds (once) the sealed Fig4 50k store the scan
// benchmarks share; sealing matters because only sealed segments take
// the batch/bitmap path and fill the scan cache.
func scanBenchSetup(b *testing.B) *eventstore.Store {
	scanBenchOnce.Do(func() {
		s := eventstore.New(eventstore.DefaultOptions())
		datagen.GenerateInto(s, datagen.Config{
			Seed:      42,
			Hosts:     10,
			Events:    50000,
			Scenarios: []datagen.Scenario{datagen.ScenarioDemoAPT},
		})
		if err := s.Flush(); err != nil {
			panic(err)
		}
		scanBenchStore = s
	})
	b.ReportAllocs()
	return scanBenchStore
}

// scanBenchFilter is deliberately scan-bound: no agent filter and no
// entity set, so no posting list applies and every segment is filtered
// event by event — and file deletions are rare in the demo-apt
// scenario, so the predicate passes reject nearly all 50k events.
func scanBenchFilter() *eventstore.EventFilter {
	return &eventstore.EventFilter{
		Ops:     []sysmon.Operation{sysmon.OpDelete},
		ObjType: sysmon.EntityFile,
	}
}

// BenchmarkScanColdSequential is the pre-batching reference: the
// row-at-a-time callback loop the engine's DisableParallel path runs,
// one matches() call per event.
func BenchmarkScanColdSequential(b *testing.B) {
	store := scanBenchSetup(b)
	filter := scanBenchFilter()
	units := store.Snapshot().Units(filter)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := 0
		for k := range units {
			units[k].Scan(filter, func(ev *sysmon.Event) bool {
				rows++
				return true
			})
		}
		scanBenchSink = rows
	}
}

func benchScanExecutor(b *testing.B, cfg Config, warm bool) {
	store := scanBenchSetup(b)
	filter := scanBenchFilter()
	e := NewWithConfig(store, cfg)
	units := store.Snapshot().Units(filter)
	run := func() {
		var stats ExecStats
		rows := 0
		err := e.forEachUnitOrdered(context.Background(), units, filter, nil, &stats, 0,
			func(batch []sysmon.Event) bool {
				rows += len(batch)
				return true
			})
		if err != nil {
			b.Fatal(err)
		}
		scanBenchSink = rows
	}
	if warm {
		run() // prime the scan cache so every measured run hits it
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkScanColdWorkers1(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 1}, false)
}
func BenchmarkScanColdWorkers2(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 2}, false)
}
func BenchmarkScanColdWorkers4(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 4}, false)
}
func BenchmarkScanColdWorkers8(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 8}, false)
}

func BenchmarkScanWarmWorkers1(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 1, ScanCacheBytes: 64 << 20}, true)
}
func BenchmarkScanWarmWorkers4(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 4, ScanCacheBytes: 64 << 20}, true)
}
func BenchmarkScanWarmWorkers8(b *testing.B) {
	benchScanExecutor(b, Config{ScanWorkers: 8, ScanCacheBytes: 64 << 20}, true)
}
