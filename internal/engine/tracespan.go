package engine

import (
	"time"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/workpool"
)

// scanSpan captures the counter baselines for one pattern scan so the
// span can carry deltas: the per-execution stats (events scanned, scan
// cache hits/misses, pool wait) are exact; the block-cache and
// worker-pool counters are process-global, so under concurrent queries
// their deltas attribute shared work approximately — good enough to
// show "this scan decompressed ~N blocks", which is what the trace is
// for.
type scanSpan struct {
	sp       *obs.Span
	stats    *ExecStats
	scanned  int64
	hits     int
	misses   int
	bindings int
	wait     time.Duration
	bc       eventstore.BlockCacheStats
	pool     workpool.Stats
}

// beginScanSpan opens a scan span under parent; nil parent (untraced
// execution) returns nil and every later call no-ops.
func (e *Engine) beginScanSpan(parent *obs.Span, name string, stats *ExecStats) *scanSpan {
	if parent == nil {
		return nil
	}
	return &scanSpan{
		sp:       parent.Child(name),
		stats:    stats,
		scanned:  stats.ScannedEvents,
		hits:     stats.SegmentHits,
		misses:   stats.SegmentMisses,
		bindings: stats.Bindings,
		wait:     stats.PoolWait,
		bc:       e.store.BlockCacheStats(),
		pool:     e.pool.Load().Stats(),
	}
}

// endScanSpan records the scan's counter deltas and closes the span.
// matched < 0 means the scan streamed (final pattern) and has no
// materialized match count; the bindings delta is recorded instead.
func (e *Engine) endScanSpan(ss *scanSpan, matched int) {
	if ss == nil {
		return
	}
	st := ss.stats
	ss.sp.SetInt("events_scanned", st.ScannedEvents-ss.scanned)
	if matched >= 0 {
		ss.sp.SetInt("events_matched", int64(matched))
	} else {
		ss.sp.SetInt("bindings", int64(st.Bindings-ss.bindings))
	}
	ss.sp.SetInt("scan_cache_hits", int64(st.SegmentHits-ss.hits))
	ss.sp.SetInt("scan_cache_misses", int64(st.SegmentMisses-ss.misses))
	ss.sp.SetInt("pool_wait_us", (st.PoolWait - ss.wait).Microseconds())
	bc := e.store.BlockCacheStats()
	ss.sp.SetInt("block_cache_hits", int64(bc.Hits-ss.bc.Hits))
	// a block-cache miss is exactly one block decompressed
	ss.sp.SetInt("blocks_decompressed", int64(bc.Misses-ss.bc.Misses))
	ps := e.pool.Load().Stats()
	ss.sp.SetInt("pool_tasks", int64(ps.Tasks-ss.pool.Tasks))
	ss.sp.SetInt("pool_saturated", int64(ps.Saturated-ss.pool.Saturated))
	ss.sp.End()
}
