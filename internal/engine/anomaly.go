package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/numfmt"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/sysmon"
)

// aggState accumulates one aggregate over one (window, group) cell. One
// state reproduces any of the five aggregate functions.
type aggState struct {
	count int64
	sum   float64
	min   float64
	max   float64
}

func (a *aggState) add(v float64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.count++
	a.sum += v
}

func (a *aggState) value(fn string) float64 {
	switch fn {
	case "count":
		return float64(a.count)
	case "sum":
		return a.sum
	case "avg":
		if a.count == 0 {
			return 0
		}
		return a.sum / float64(a.count)
	case "min":
		return a.min
	case "max":
		return a.max
	default:
		return math.NaN()
	}
}

// groupCell is the per-group state across all windows.
type groupCell struct {
	keys []string              // rendered non-aggregate return cells
	aggs map[string][]aggState // alias → per-window states
}

// anomalyEnv resolves variables during anomaly evaluation: the single
// pattern's subject/object roles plus the aggregate alias table.
type anomalyEnv struct {
	subjName string
	objName  string
	objType  sysmon.EntityType
	aggFns   map[string]string // alias → aggregate function
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// runAnomaly evaluates an anomaly query: partition the matched events
// into sliding windows by timestamp, compute the aggregates per window
// and group, and enforce the having filter, which may access historical
// window results (paper §2.3). Aggregation is inherently total — every
// matching event contributes before any window can be judged — but the
// result windows stream: each surviving (group, window) row is emitted
// as it is evaluated (groups in sorted order, windows ascending), so
// downstream consumers see first rows before the emission loop finishes
// and a satisfied limit stops the loop early.
func (e *Engine) runAnomaly(ctx context.Context, snap *eventstore.Snapshot, q *ast.AnomalyQuery, info *semantic.Info, stats *ExecStats, emit emitFunc) error {
	// reuse the multievent planner for the single pattern
	mq := &ast.MultieventQuery{Head_: q.Head_, Patterns: []ast.EventPattern{q.Pattern}}
	plan, err := e.buildPlan(snap, mq)
	if err != nil {
		return err
	}
	pp := plan.patterns[0]
	qsp := obs.SpanFromContext(ctx)
	ss := e.beginScanSpan(qsp, "scan "+pp.alias, stats)
	events := e.scanPattern(ctx, snap, &pp.filter, pp, stats)
	e.endScanSpan(ss, len(events))
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: query aborted: %w", err)
	}
	stats.PatternOrder = []string{pp.alias}

	// window extent: explicit time window, else the data's extent
	from, to := plan.window.From, plan.window.To
	if from == 0 || to == 0 {
		minTS, maxTS := snap.TimeRange()
		if from == 0 {
			from = minTS
		}
		if to == 0 {
			to = maxTS + 1
		}
	}
	if to <= from || len(events) == 0 {
		return nil
	}
	step, win := int64(q.Step), int64(q.Window)
	numWin := int((to-1-from)/step) + 1
	asp := qsp.Child("aggregate")
	asp.SetInt("windows", int64(numWin))
	defer asp.End()

	env := &anomalyEnv{
		subjName: q.Pattern.Subject.Name,
		objName:  q.Pattern.Object.Name,
		objType:  q.Pattern.Object.Type,
		aggFns:   map[string]string{},
	}

	// split return items into aggregates and group keys
	type aggItem struct {
		alias string
		fn    string
		arg   ast.Expr
	}
	var aggItems []aggItem
	var keyIdx []int
	for i := range q.Return {
		if call, ok := q.Return[i].Expr.(*ast.CallExpr); ok {
			alias := q.Return[i].Alias
			if alias == "" {
				alias = call.Func
			}
			aggItems = append(aggItems, aggItem{alias: alias, fn: call.Func, arg: call.Arg})
			env.aggFns[alias] = call.Func
		} else {
			keyIdx = append(keyIdx, i)
		}
	}
	groupExprs := q.GroupBy
	if len(groupExprs) == 0 {
		for _, i := range keyIdx {
			groupExprs = append(groupExprs, q.Return[i].Expr)
		}
	}

	groups := map[string]*groupCell{}
	var groupOrder []string
	for i := range events {
		// window aggregation over a huge match set must honor the
		// deadline just as the scans do
		if i%joinCheckInterval == joinCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: query aborted: %w", err)
			}
		}
		ev := &events[i]
		if ev.StartTS < from || ev.StartTS >= to {
			continue
		}
		gk, err := e.eventExprKey(groupExprs, info, env, ev)
		if err != nil {
			return err
		}
		cell := groups[gk]
		if cell == nil {
			cell = &groupCell{aggs: map[string][]aggState{}}
			for _, it := range aggItems {
				cell.aggs[it.alias] = make([]aggState, numWin)
			}
			for _, ri := range keyIdx {
				v, err := e.eventExprValue(q.Return[ri].Expr, info, env, ev)
				if err != nil {
					return err
				}
				cell.keys = append(cell.keys, v)
			}
			groups[gk] = cell
			groupOrder = append(groupOrder, gk)
		}
		// the event belongs to every window k with
		// from+k*step <= ts < from+k*step+win
		off := ev.StartTS - from
		kHigh := off / step
		kLow := floorDiv(off-win, step) + 1
		if kLow < 0 {
			kLow = 0
		}
		for k := kLow; k <= kHigh && k < int64(numWin); k++ {
			for _, it := range aggItems {
				v := 1.0
				if it.fn != "count" && it.arg != nil {
					av, err := e.eventExprNum(it.arg, info, ev)
					if err != nil {
						return err
					}
					v = av
				}
				cell.aggs[it.alias][k].add(v)
			}
		}
	}
	sort.Strings(groupOrder)

	// Windows without full history for the deepest lag the having clause
	// references are skipped: a model comparing against previous windows
	// needs those windows to exist.
	firstWin := 0
	if q.Having != nil {
		firstWin = maxLag(q.Having)
	}
	seen := map[string]struct{}{} // identical rows recur across windows
	for _, gk := range groupOrder {
		cell := groups[gk]
		for k := firstWin; k < numWin; k++ {
			active := false
			for _, it := range aggItems {
				if cell.aggs[it.alias][k].count > 0 {
					active = true
					break
				}
			}
			if !active {
				continue
			}
			if q.Having != nil {
				v, err := evalHavingNum(q.Having, cell, env, k)
				if err != nil {
					return err
				}
				if v == 0 {
					continue
				}
			}
			row := make([]string, len(q.Return))
			ki, ai := 0, 0
			for i := range q.Return {
				if _, isAgg := q.Return[i].Expr.(*ast.CallExpr); isAgg {
					it := aggItems[ai]
					ai++
					row[i] = numfmt.Format(cell.aggs[it.alias][k].value(it.fn))
				} else {
					row[i] = cell.keys[ki]
					ki++
				}
			}
			key := strings.Join(row, "\t")
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if !emit(row) {
				return nil
			}
		}
	}
	return nil
}

// maxLag returns the deepest historical window access in an expression.
func maxLag(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.HistExpr:
		return x.Lag
	case *ast.BinaryExpr:
		l, r := maxLag(x.L), maxLag(x.R)
		if l > r {
			return l
		}
		return r
	case *ast.UnaryExpr:
		return maxLag(x.X)
	default:
		return 0
	}
}

// eventExprKey renders the group key for an event.
func (e *Engine) eventExprKey(exprs []ast.Expr, info *semantic.Info, env *anomalyEnv, ev *sysmon.Event) (string, error) {
	parts := make([]string, len(exprs))
	for i, x := range exprs {
		v, err := e.eventExprValue(x, info, env, ev)
		if err != nil {
			return "", err
		}
		parts[i] = v
	}
	return strings.Join(parts, "\x00"), nil
}

// eventExprValue renders a non-aggregate expression against one event.
func (e *Engine) eventExprValue(expr ast.Expr, info *semantic.Info, env *anomalyEnv, ev *sysmon.Event) (string, error) {
	switch x := expr.(type) {
	case *ast.AttrExpr:
		if t, ok := info.Vars[x.Var]; ok {
			var id sysmon.EntityID
			switch x.Var {
			case env.subjName:
				id = ev.Subject
			case env.objName:
				id = ev.Object
			default:
				return "", fmt.Errorf("engine: variable %q is not part of the anomaly pattern", x.Var)
			}
			return e.store.Dict().Attr(t, id, x.Attr), nil
		}
		if _, ok := info.Events[x.Var]; ok {
			v, ok := sysmon.EventAttr(ev, x.Attr)
			if !ok {
				return "", fmt.Errorf("engine: unknown event attribute %q", x.Attr)
			}
			return v, nil
		}
		return "", fmt.Errorf("engine: unknown variable %q", x.Var)
	case *ast.NumberLit:
		return numfmt.Format(x.Val), nil
	case *ast.StringLit:
		return x.Val, nil
	default:
		return "", fmt.Errorf("engine: unsupported group expression %s", ast.ExprString(expr))
	}
}

// eventExprNum evaluates an aggregate argument numerically for one event.
func (e *Engine) eventExprNum(expr ast.Expr, info *semantic.Info, ev *sysmon.Event) (float64, error) {
	switch x := expr.(type) {
	case *ast.AttrExpr:
		if _, ok := info.Events[x.Var]; ok {
			switch x.Attr {
			case "amount":
				return float64(ev.Amount), nil
			case "agentid", "agent_id":
				return float64(ev.AgentID), nil
			case "id":
				return float64(ev.ID), nil
			case "seq":
				return float64(ev.Seq), nil
			case "starttime", "start_time":
				return float64(ev.StartTS), nil
			case "endtime", "end_time":
				return float64(ev.EndTS), nil
			}
			return 0, fmt.Errorf("engine: event attribute %q is not numeric", x.Attr)
		}
		return 0, fmt.Errorf("engine: aggregate argument must be an event attribute, got %s", ast.ExprString(expr))
	case *ast.VarExpr:
		return 1, nil // count(evt): value is irrelevant
	case *ast.NumberLit:
		return x.Val, nil
	default:
		return 0, fmt.Errorf("engine: unsupported aggregate argument %s", ast.ExprString(expr))
	}
}

// evalHavingNum evaluates a having expression for a group at window k.
// Comparisons and logical operators yield 1/0; history before the first
// window reads as 0.
func evalHavingNum(expr ast.Expr, cell *groupCell, env *anomalyEnv, k int) (float64, error) {
	switch x := expr.(type) {
	case *ast.NumberLit:
		return x.Val, nil
	case *ast.VarExpr:
		return aggAt(cell, env, x.Name, k)
	case *ast.HistExpr:
		return aggAt(cell, env, x.Name, k-x.Lag)
	case *ast.UnaryExpr:
		v, err := evalHavingNum(x.X, cell, env, k)
		if err != nil {
			return 0, err
		}
		if x.Op == "not" {
			return b2f(v == 0), nil
		}
		return -v, nil
	case *ast.BinaryExpr:
		l, err := evalHavingNum(x.L, cell, env, k)
		if err != nil {
			return 0, err
		}
		r, err := evalHavingNum(x.R, cell, env, k)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, nil
			}
			return l / r, nil
		case "=":
			return b2f(l == r), nil
		case "!=":
			return b2f(l != r), nil
		case "<":
			return b2f(l < r), nil
		case "<=":
			return b2f(l <= r), nil
		case ">":
			return b2f(l > r), nil
		case ">=":
			return b2f(l >= r), nil
		case "and":
			return b2f(l != 0 && r != 0), nil
		case "or":
			return b2f(l != 0 || r != 0), nil
		}
		return 0, fmt.Errorf("engine: unsupported having operator %q", x.Op)
	default:
		return 0, fmt.Errorf("engine: unsupported having expression %s", ast.ExprString(expr))
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// aggAt reads an aggregate alias at window k; out-of-range windows read 0.
func aggAt(cell *groupCell, env *anomalyEnv, alias string, k int) (float64, error) {
	fn, ok := env.aggFns[alias]
	if !ok {
		return 0, fmt.Errorf("engine: unknown aggregate alias %q in having", alias)
	}
	states := cell.aggs[alias]
	if k < 0 || k >= len(states) {
		return 0, nil
	}
	return states[k].value(fn), nil
}
