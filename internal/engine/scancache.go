package engine

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// The segment scan cache is what turns the store's immutable segments
// into reusable work: a pattern scan's filtered output over one sealed
// segment is a pure function of (filter, predicates, segment), so it is
// cached under (filter fingerprint, segment id) and served verbatim on
// the next execution. An append only creates new segments and memtable
// events — it never rewrites a sealed segment — so a re-run after an
// append re-scans just the unsealed tail and the fresh segments while
// every sealed-segment result is reused. This is the segment-granular
// replacement for invalidating whole query results on every commit.
//
// Entries are only written for scans that ran to completion (a
// cancelled mid-unit scan yields a partial batch that must not be
// served later), and segments are immutable for their lifetime, so
// entries never go stale; they only age out of the byte-bounded LRU.

// scanFP fingerprints one pattern scan: every field of the (narrowed)
// event filter plus the compiled per-event predicates. 128 bits keeps
// accidental collisions out of reach for cache-sized key populations.
type scanFP [16]byte

// scanFingerprint hashes the filter and predicates into a scanFP. The
// inputs are built deterministically by the planner (agent and op lists
// in query order, entity sets hashed in sorted-ID order), so equal scans
// always produce equal fingerprints.
func scanFingerprint(f *eventstore.EventFilter, preds []evtPred) scanFP {
	h := fnv.New128a()
	var b [8]byte
	wr := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	wr(uint64(f.From))
	wr(uint64(f.To))
	wr(uint64(f.ObjType))
	wr(f.MinAmount)
	wr(uint64(len(f.Agents)))
	for _, a := range f.Agents {
		wr(uint64(a))
	}
	wr(uint64(len(f.Ops)))
	for _, op := range f.Ops {
		wr(uint64(op))
	}
	writeSet := func(set *eventstore.IDSet) {
		if set == nil {
			wr(^uint64(0))
			return
		}
		ids := set.IDs()
		wr(uint64(len(ids)))
		for _, id := range ids {
			wr(uint64(id))
		}
	}
	writeSet(f.Subjects)
	writeSet(f.Objects)
	wr(uint64(len(preds)))
	for i := range preds {
		p := &preds[i]
		ws(p.attr)
		wr(uint64(p.op))
		wr(math.Float64bits(p.num))
		ws(p.str)
	}
	var fp scanFP
	copy(fp[:], h.Sum(nil))
	return fp
}

// ScanCacheStats are the segment scan cache's counters and gauges.
type ScanCacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

type scanCacheKey struct {
	fp  scanFP
	seg uint64
}

type scanCacheEntry struct {
	key    scanCacheKey
	events []sysmon.Event // filtered batch; shared, read-only
	bytes  int64
	used   bool // second-chance bit; set on hit, cleared by the evictor
}

// scanCache is a byte-bounded cache over per-segment filtered scan
// results with CLOCK (second-chance) eviction: a hit only sets the
// entry's used bit — no list surgery — so the fully warm path, which
// touches hundreds of entries per query, stays cheap; the evictor
// recycles entries whose bit has not been set since its last pass.
// Hit/miss counters are monotonic across the engine's lifetime.
type scanCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64

	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[scanCacheKey]*list.Element
	order    *list.List // front = most recently used
}

func newScanCache(maxBytes int64) *scanCache {
	if maxBytes <= 0 {
		return nil
	}
	return &scanCache{
		maxBytes: maxBytes,
		entries:  make(map[scanCacheKey]*list.Element),
		order:    list.New(),
	}
}

// entryBytes approximates an entry's resident size: the event array
// plus fixed bookkeeping overhead (so empty batches — the common case
// for selective filters — still cost something and cannot grow the map
// unboundedly for free).
func entryBytes(events []sysmon.Event) int64 {
	const overhead = 96
	return int64(len(events))*int64(unsafe.Sizeof(sysmon.Event{})) + overhead
}

func (c *scanCache) get(fp scanFP, seg uint64) ([]sysmon.Event, bool) {
	if c == nil {
		return nil, false
	}
	key := scanCacheKey{fp: fp, seg: seg}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	entry := el.Value.(*scanCacheEntry)
	entry.used = true
	events := entry.events
	c.mu.Unlock()
	c.hits.Add(1)
	return events, true
}

// getAll looks up every sealed unit's batch under one lock acquisition
// — the warm path touches hundreds of segments, so per-unit locking
// would dominate a fully cached scan. out[i] is nil when unit i is a
// memtable tail or has no cached batch (cached empty batches are
// normalized to a non-nil sentinel by put). Hit/miss counters update
// for sealed units only.
func (c *scanCache) getAll(fp scanFP, units []eventstore.ScanUnit) [][]sysmon.Event {
	if c == nil {
		return nil
	}
	out := make([][]sysmon.Event, len(units))
	var hits, misses uint64
	c.mu.Lock()
	for i := range units {
		if !units[i].Sealed() {
			continue
		}
		if el, ok := c.entries[scanCacheKey{fp: fp, seg: units[i].SegmentID()}]; ok {
			entry := el.Value.(*scanCacheEntry)
			entry.used = true
			out[i] = entry.events
			hits++
		} else {
			misses++
		}
	}
	c.mu.Unlock()
	c.hits.Add(hits)
	c.misses.Add(misses)
	return out
}

// peekAll is getAll without the hit/miss accounting: the parallel
// ordered-merge executor prefetches every sealed unit's batch up front
// but attributes a hit or miss only when a unit's result is actually
// consumed (via note), so the reuse counters always match what the
// sequential walk would have reported — even when a satisfied limit
// stops the merge before every prefetched unit is consumed.
func (c *scanCache) peekAll(fp scanFP, units []eventstore.ScanUnit) [][]sysmon.Event {
	if c == nil {
		return nil
	}
	out := make([][]sysmon.Event, len(units))
	c.mu.Lock()
	for i := range units {
		if !units[i].Sealed() {
			continue
		}
		if el, ok := c.entries[scanCacheKey{fp: fp, seg: units[i].SegmentID()}]; ok {
			entry := el.Value.(*scanCacheEntry)
			entry.used = true
			out[i] = entry.events
		}
	}
	c.mu.Unlock()
	return out
}

// note records the consume-time outcome for one sealed unit served
// through peekAll: a hit for a prefetched batch, a miss for a unit that
// had to be scanned.
func (c *scanCache) note(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}

// emptyBatch is the shared non-nil value cached for scans that matched
// nothing, so getAll can use nil for "not cached".
var emptyBatch = make([]sysmon.Event, 0)

func (c *scanCache) put(fp scanFP, seg uint64, events []sysmon.Event) {
	if c == nil {
		return
	}
	if events == nil {
		events = emptyBatch
	}
	entry := &scanCacheEntry{
		key:    scanCacheKey{fp: fp, seg: seg},
		events: events,
		bytes:  entryBytes(events),
	}
	if entry.bytes > c.maxBytes {
		return // would evict everything and still not fit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[entry.key]; ok {
		c.bytes += entry.bytes - el.Value.(*scanCacheEntry).bytes
		entry.used = true
		el.Value = entry
	} else {
		c.entries[entry.key] = c.order.PushFront(entry)
		c.bytes += entry.bytes
	}
	// CLOCK sweep: recycle from the back; recently used entries get a
	// second chance at the front with their bit cleared. Each pass over
	// a used entry clears its bit, so the loop terminates.
	for c.bytes > c.maxBytes {
		oldest := c.order.Back()
		old := oldest.Value.(*scanCacheEntry)
		if old.used {
			old.used = false
			c.order.MoveToFront(oldest)
			continue
		}
		c.order.Remove(oldest)
		c.bytes -= old.bytes
		delete(c.entries, old.key)
	}
}

// retire drops every entry keyed to one of the given segment IDs:
// compaction replaced those segments with a merged one, so their
// batches can never be requested again — the merged segment is scanned
// (and cached) fresh under its own ID. A late put from a query still
// scanning a pinned pre-compaction snapshot may re-add one entry; it is
// bounded garbage that ages out with the LRU.
func (c *scanCache) retire(segIDs []uint64) {
	if c == nil || len(segIDs) == 0 {
		return
	}
	retired := make(map[uint64]bool, len(segIDs))
	for _, id := range segIDs {
		retired[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if retired[key.seg] {
			c.bytes -= el.Value.(*scanCacheEntry).bytes
			c.order.Remove(el)
			delete(c.entries, key)
		}
	}
}

func (c *scanCache) stats() ScanCacheStats {
	if c == nil {
		return ScanCacheStats{}
	}
	c.mu.Lock()
	entries, bytes := c.order.Len(), c.bytes
	c.mu.Unlock()
	return ScanCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
		Bytes:   bytes,
	}
}
