package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/obs"
)

// CursorOptions shape a streaming execution.
type CursorOptions struct {
	// Limit > 0 enables limit pushdown: the cursor yields at most Limit
	// rows, and the final pattern scan runs sequentially and terminates
	// as soon as they have been produced, so a small-limit query over a
	// huge store does not pay for a full scan. Rows arrive in production
	// order — there is no global sort under pushdown.
	Limit int
}

// halt is a one-shot broadcast used to abort in-flight scans: Close on
// the cursor (or an internal execution error in a parallel worker)
// triggers it, and every cancellation checkpoint observes it through
// haltCtx below.
type halt struct {
	once sync.Once
	ch   chan struct{}
}

func newHalt() *halt { return &halt{ch: make(chan struct{})} }

func (h *halt) trigger() { h.once.Do(func() { close(h.ch) }) }

func (h *halt) triggered() bool {
	select {
	case <-h.ch:
		return true
	default:
		return false
	}
}

// haltCtx layers the halt signal over the caller's context: Err reports
// cancellation when either the halt has been triggered or the parent
// context is done, so the existing ctx.Err() checkpoints in the scan,
// join, and projection loops double as early-termination points without
// wrapping the caller's context in a derived one (derived contexts
// would hide custom Err implementations used by the cancellation
// tests).
type haltCtx struct {
	context.Context
	h *halt
}

func (c *haltCtx) Err() error {
	select {
	case <-c.h.ch:
		return context.Canceled
	default:
	}
	return c.Context.Err()
}

// Cursor is a pull-based iterator over a query's projected rows. The
// producer executes the query plan on demand: rows are handed over one
// at a time, intermediate results past the prefix joins are never
// materialized, and closing the cursor aborts the remaining scan work.
//
// Usage follows database/sql:
//
//	cur, err := eng.ExecuteCursor(ctx, src, CursorOptions{Limit: 50})
//	...
//	defer cur.Close()
//	for cur.Next() {
//	    row := cur.Row()
//	    ...
//	}
//	err = cur.Err()
//
// Rows stream in production order. Stats are complete once Next has
// returned false or Close has returned. A Cursor must be closed;
// abandoning one mid-stream leaks its producer goroutine until the
// parent context is cancelled.
type Cursor struct {
	cols []string
	rows chan []string
	h    *halt
	done chan struct{}

	cur []string

	mu    sync.Mutex
	err   error
	stats ExecStats
}

// Columns returns the result header. It is available immediately, before
// any row has been produced.
func (c *Cursor) Columns() []string { return c.cols }

// Next blocks until the next row is available and reports whether one
// was produced. After it returns false, Err distinguishes exhaustion
// from failure.
func (c *Cursor) Next() bool {
	row, ok := <-c.rows
	if !ok {
		return false
	}
	c.cur = row
	return true
}

// Row returns the row made current by the last successful Next. The
// slice is owned by the caller.
func (c *Cursor) Row() []string { return c.cur }

// Err returns the execution error, if any, once the stream has ended.
func (c *Cursor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats returns the execution statistics. They are complete (and
// stable) once Next has returned false or Close has returned; a
// mid-stream call returns the zero value.
func (c *Cursor) Stats() ExecStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close aborts the remaining execution and releases the producer. It
// blocks until in-flight scan work has observed the abort, so the
// engine's statistics are final when it returns. Closing an exhausted
// or already-closed cursor is a no-op.
func (c *Cursor) Close() error {
	c.h.trigger()
	// Drain any row the producer is blocked on handing over, then wait
	// for it to exit.
	for {
		select {
		case _, ok := <-c.rows:
			if !ok {
				<-c.done
				return nil
			}
		case <-c.done:
			return nil
		}
	}
}

// ExecuteCursor prepares and starts one AIQL query, returning a cursor
// over its rows — the bind-then-run form of a one-shot execution.
// Parse, semantic, and planning errors are returned immediately;
// execution errors surface through Cursor.Err. Queries with `$name`
// parameters need Prepare + ExecutePreparedCursor to supply bindings.
func (e *Engine) ExecuteCursor(ctx context.Context, src string, opts CursorOptions) (*Cursor, error) {
	psp := obs.SpanFromContext(ctx).Child("parse")
	p, err := e.Prepare(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	return e.ExecutePreparedCursor(ctx, p, nil, opts)
}

// ExecuteQueryCursor validates and starts a parsed query under ctx,
// returning a cursor over its rows.
func (e *Engine) ExecuteQueryCursor(ctx context.Context, q ast.Query, opts CursorOptions) (*Cursor, error) {
	type compiled struct {
		run  func(cctx context.Context, stats *ExecStats, emit emitFunc) error
		cols []string
	}
	var cp compiled
	psp := obs.SpanFromContext(ctx).Child("plan")
	defer psp.End()
	// The whole execution — planning estimates included — runs against
	// one lock-free snapshot, so concurrent appends and seals never move
	// data under the query and a cursor iterated across a store mutation
	// still sees the segment set that existed when execution began.
	snap := e.store.Snapshot()
	switch x := q.(type) {
	case *ast.DependencyQuery:
		if _, err := semantic.Check(x); err != nil {
			return nil, err
		}
		mq, err := RewriteDependency(x)
		if err != nil {
			return nil, err
		}
		info, err := semantic.Check(mq)
		if err != nil {
			return nil, err
		}
		plan, err := e.buildPlan(snap, mq)
		if err != nil {
			return nil, err
		}
		cp.cols = info.Columns
		cp.run = func(cctx context.Context, stats *ExecStats, emit emitFunc) error {
			return e.runMultievent(cctx, snap, mq, info, plan, stats, emit, opts.Limit)
		}
	case *ast.MultieventQuery:
		info, err := semantic.Check(x)
		if err != nil {
			return nil, err
		}
		plan, err := e.buildPlan(snap, x)
		if err != nil {
			return nil, err
		}
		cp.cols = info.Columns
		cp.run = func(cctx context.Context, stats *ExecStats, emit emitFunc) error {
			return e.runMultievent(cctx, snap, x, info, plan, stats, emit, opts.Limit)
		}
	case *ast.AnomalyQuery:
		info, err := semantic.Check(x)
		if err != nil {
			return nil, err
		}
		cp.cols = info.Columns
		cp.run = func(cctx context.Context, stats *ExecStats, emit emitFunc) error {
			return e.runAnomaly(cctx, snap, x, info, stats, emit)
		}
	default:
		return nil, fmt.Errorf("engine: unsupported query type %T", q)
	}

	return e.startCursor(ctx, cp.cols, opts, cp.run), nil
}

// startCursor launches the producer goroutine for a compiled execution
// and returns its cursor. run receives the halt-layered context, the
// statistics sink, and the emit callback; it is the only goroutine that
// touches them until the cursor ends.
func (e *Engine) startCursor(ctx context.Context, cols []string, opts CursorOptions, run func(cctx context.Context, stats *ExecStats, emit emitFunc) error) *Cursor {
	// The row channel is buffered so a fast producer is not forced into a
	// goroutine handoff per row on full drains; the buffer stays small so
	// memory remains bounded and backpressure still reaches the scan.
	c := &Cursor{
		cols: cols,
		rows: make(chan []string, 256),
		h:    newHalt(),
		done: make(chan struct{}),
	}
	start := time.Now()
	cctx := &haltCtx{Context: ctx, h: c.h}
	go func() {
		defer close(c.done)
		sent := 0
		var stats ExecStats
		emit := func(row []string) bool {
			select {
			case c.rows <- row:
			case <-c.h.ch:
				return false
			case <-ctx.Done():
				return false
			}
			sent++
			return opts.Limit <= 0 || sent < opts.Limit
		}
		runErr := run(cctx, &stats, emit)
		// Classify the outcome. A real execution error always wins; a
		// cancellation that traces to the parent context is reported as
		// an abort; a cancellation caused solely by Close is a clean
		// early stop, not an error.
		isCtx := runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded))
		switch {
		case runErr != nil && !isCtx:
			// keep it
		case ctx.Err() != nil:
			if perr := ctx.Err(); runErr == nil || !errors.Is(runErr, perr) {
				runErr = fmt.Errorf("engine: query aborted: %w", perr)
			}
		case isCtx && c.h.triggered():
			runErr = nil
		}
		stats.Elapsed = time.Since(start)
		c.mu.Lock()
		c.err = runErr
		c.stats = stats
		c.mu.Unlock()
		close(c.rows)
	}()
	return c
}
