package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// countdownCtx is a context whose Err starts failing after a fixed number
// of Err calls, making mid-scan cancellation deterministic: the test
// controls exactly how many cancellation checkpoints pass before the
// abort, independent of machine speed.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(allowChecks int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(allowChecks)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// buildWideStore commits n read/write file events spread over many agents
// and time buckets, so scans cross many partitions.
func buildWideStore(t testing.TB, n int) *eventstore.Store {
	t.Helper()
	s := eventstore.New(eventstore.DefaultOptions())
	recs := make([]eventstore.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, eventstore.Record{
			AgentID: uint32(1 + i%8),
			Subject: proc("worker.exe"),
			Op:      sysmon.OpWrite,
			ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: fmt.Sprintf(`C:\data\out%d.log`, i)},
			StartTS: ts(i / 50),
			Amount:  uint64(i),
		})
	}
	s.AppendAll(recs)
	s.Flush()
	return s
}

const wideQuery = `proc p write file f as evt return p, f`

func TestExecuteCancellation(t *testing.T) {
	store := buildWideStore(t, 60000)
	total := int64(store.Len())

	t.Run("already cancelled context returns promptly without scanning", func(t *testing.T) {
		for _, cfg := range []Config{{}, {DisableParallel: true}} {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			res, err := NewWithConfig(store, cfg).Execute(ctx, wideQuery)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cfg %+v: want context.Canceled, got %v", cfg, err)
			}
			if res == nil {
				t.Fatalf("cfg %+v: want partial result with stats, got nil", cfg)
			}
			if res.Stats.ScannedEvents != 0 {
				t.Errorf("cfg %+v: scanned %d events under a pre-cancelled context, want 0", cfg, res.Stats.ScannedEvents)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("cfg %+v: pre-cancelled query took %s, want prompt return", cfg, elapsed)
			}
		}
	})

	t.Run("expired deadline returns deadline error without scanning", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
		defer cancel()
		res, err := New(store).Execute(ctx, wideQuery)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want context.DeadlineExceeded, got %v", err)
		}
		if res.Stats.ScannedEvents != 0 {
			t.Errorf("scanned %d events under an expired deadline, want 0", res.Stats.ScannedEvents)
		}
	})

	t.Run("mid-scan cancellation aborts before visiting every event", func(t *testing.T) {
		for _, cfg := range []Config{{}, {DisableParallel: true}} {
			ctx := newCountdownCtx(4)
			res, err := NewWithConfig(store, cfg).Execute(ctx, wideQuery)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cfg %+v: want context.Canceled, got %v", cfg, err)
			}
			if res.Stats.ScannedEvents == 0 {
				t.Errorf("cfg %+v: expected some events visited before the abort", cfg)
			}
			if res.Stats.ScannedEvents >= total {
				t.Errorf("cfg %+v: visited %d of %d events despite mid-scan cancellation", cfg, res.Stats.ScannedEvents, total)
			}
		}
	})

	t.Run("anomaly scan honors cancellation", func(t *testing.T) {
		ctx := newCountdownCtx(4)
		res, err := New(store).Execute(ctx, `window = 1 min, step = 1 min
proc p write file f as evt
return p, count(evt) as c
group by p
having c > 0`)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if res.Stats.ScannedEvents >= total {
			t.Errorf("visited %d of %d events despite mid-scan cancellation", res.Stats.ScannedEvents, total)
		}
	})

	t.Run("uncancelled context still returns full results", func(t *testing.T) {
		res, err := New(store).Execute(context.Background(), wideQuery)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if int64(len(res.Rows)) != total {
			t.Fatalf("got %d rows, want %d", len(res.Rows), total)
		}
	})
}
