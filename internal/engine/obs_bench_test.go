// Observability benchmarks behind `make bench-obs` (BENCH_obs.json):
// the full four-pattern Fig4 investigation query, cold-scanned over the
// 50k-event demo-apt dataset, with and without a query span in the
// context. TraceOn exercises every span the service attaches (parse,
// per-pattern scan/join deltas); the CI gate asserts its ns/op stays
// within 5% of TraceOff, i.e. tracing is cheap enough to leave on for
// every execution.
package engine

import (
	"context"
	"testing"

	"github.com/aiql/aiql/internal/obs"
)

// obsBenchQuery is the paper's Query 1 shape against the demo-apt
// scenario (same text the service benchmarks use).
const obsBenchQuery = `(at "05/10/2018")
agentid = 2
proc p1 start proc p2 as evt1
proc p2 read file f1 as evt2
proc p2 write ip i1 as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, f1, i1`

func benchObsFig4(b *testing.B, traced bool) {
	// New with the zero Config installs no scan cache, so every
	// iteration re-scans the sealed segments: the overhead bound is
	// about the cold path, where the per-scan baseline captures sit.
	e := New(scanBenchSetup(b))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCtx := ctx
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace("query")
			runCtx = obs.WithSpan(ctx, tr.Root())
		}
		res, err := e.Execute(runCtx, obsBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if traced {
			tr.Root().End()
			if tr.Tree() == nil {
				b.Fatal("traced run produced no span tree")
			}
		}
		scanBenchSink = len(res.Rows)
	}
}

func BenchmarkObsFig4TraceOff(b *testing.B) { benchObsFig4(b, false) }
func BenchmarkObsFig4TraceOn(b *testing.B)  { benchObsFig4(b, true) }
