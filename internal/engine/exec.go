package engine

import (
	"context"
	"fmt"
	"strings"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/numfmt"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/sysmon"
)

// maxBindings bounds intermediate join results to keep a runaway query
// from exhausting memory.
const maxBindings = 4 << 20

// emitFunc receives one projected row from a streaming execution. It
// returns false when downstream demand is satisfied (the limit was
// reached or the cursor was closed); the producer then stops scanning.
type emitFunc func(row []string) bool

// binding is one partial match: entity variable assignments plus the
// events matched so far, stored in plan-assigned slots.
type binding struct {
	ents []sysmon.EntityID
	evts []sysmon.Event
}

// slots assigns dense indices to entity variables and event aliases.
type slots struct {
	vars map[string]int
	evts map[string]int
}

func newSlots(plan *queryPlan) *slots {
	s := &slots{vars: map[string]int{}, evts: map[string]int{}}
	for _, pp := range plan.patterns {
		if _, ok := s.vars[pp.subjVar]; !ok {
			s.vars[pp.subjVar] = len(s.vars)
		}
		if _, ok := s.vars[pp.objVar]; !ok {
			s.vars[pp.objVar] = len(s.vars)
		}
		if _, ok := s.evts[pp.alias]; !ok {
			s.evts[pp.alias] = len(s.evts)
		}
	}
	return s
}

// runMultievent executes the scheduled plan as a streaming pipeline: the
// prefix patterns are scanned and hash-joined into materialized bindings
// exactly as before, but the final pattern is never collected — each
// matching event is joined against the prefix bindings, projected, and
// emitted immediately. With a limit hint the final scan runs
// sequentially and short-circuits as soon as emit declines more rows, so
// a LIMIT-k query terminates after k full matches instead of draining
// the store.
//
// Cancelling ctx aborts the current scan and returns the cancellation
// error; stats keeps the statistics accumulated so far.
func (e *Engine) runMultievent(ctx context.Context, snap *eventstore.Snapshot, q *ast.MultieventQuery, info *semantic.Info, plan *queryPlan, stats *ExecStats, emit emitFunc, limitHint int) error {
	sl := newSlots(plan)
	var bindings []binding
	boundVars := map[string]bool{}
	boundEvts := map[string]bool{}
	last := len(plan.patterns) - 1
	qsp := obs.SpanFromContext(ctx)

	for step := 0; step < last; step++ {
		pp := plan.patterns[step]
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: query aborted: %w", err)
		}
		stats.PatternOrder = append(stats.PatternOrder, pp.alias)
		filter := pp.filter // copy; we will narrow it

		subjBound := boundVars[pp.subjVar]
		objBound := boundVars[pp.objVar]
		if step > 0 {
			narrowByBindings(&filter, sl, pp, bindings, subjBound, objBound)
			narrowByTemporal(&filter, plan.rels, sl, pp.alias, bindings, boundEvts)
		}

		ss := e.beginScanSpan(qsp, "scan "+pp.alias, stats)
		events := e.scanPattern(ctx, snap, &filter, pp, stats)
		e.endScanSpan(ss, len(events))
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: query aborted: %w", err)
		}
		if step == 0 {
			stats.Partitions = snap.NumPartitions()
			bindings = make([]binding, 0, len(events))
			for i := range events {
				b := binding{
					ents: make([]sysmon.EntityID, len(sl.vars)),
					evts: make([]sysmon.Event, len(sl.evts)),
				}
				b.ents[sl.vars[pp.subjVar]] = events[i].Subject
				b.ents[sl.vars[pp.objVar]] = events[i].Object
				b.evts[sl.evts[pp.alias]] = events[i]
				bindings = append(bindings, b)
			}
		} else {
			jsp := qsp.Child("join " + pp.alias)
			var err error
			bindings, err = joinStep(ctx, bindings, events, sl, pp, plan.rels, boundVars, boundEvts)
			jsp.SetInt("bindings", int64(len(bindings)))
			jsp.End()
			if err != nil {
				return err
			}
		}
		boundVars[pp.subjVar] = true
		boundVars[pp.objVar] = true
		boundEvts[pp.alias] = true
		stats.Bindings += len(bindings)
		if len(bindings) == 0 {
			return nil // no match can complete
		}
		if len(bindings) > maxBindings {
			return fmt.Errorf("engine: intermediate result exceeds %d bindings; add more selective constraints", maxBindings)
		}
	}

	// Final pattern: streamed, never materialized.
	pp := plan.patterns[last]
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: query aborted: %w", err)
	}
	stats.PatternOrder = append(stats.PatternOrder, pp.alias)
	filter := pp.filter
	if last > 0 {
		narrowByBindings(&filter, sl, pp, bindings, boundVars[pp.subjVar], boundVars[pp.objVar])
		narrowByTemporal(&filter, plan.rels, sl, pp.alias, bindings, boundEvts)
	} else {
		stats.Partitions = snap.NumPartitions()
	}
	j := newJoiner(bindings, sl, pp, plan.rels, boundVars, boundEvts, last == 0)
	proj := newProjector(e, q, info, sl)
	ss := e.beginScanSpan(qsp, "scan "+pp.alias, stats)
	err := e.streamFinal(ctx, snap, &filter, pp, j, proj, stats, emit, limitHint)
	e.endScanSpan(ss, -1)
	return err
}

// streamFinal scans the final pattern and pushes each full match through
// join → projection → emit without collecting events or bindings. Scan
// units are filtered in parallel on the worker pool but consumed
// strictly in unit order (see forEachUnitOrdered), so emission order,
// limit pushdown, and the visited-event accounting are identical to the
// sequential path; with parallelism disabled the reference sequential
// walk runs instead. Sealed-segment batches come from the scan cache
// when it holds them.
func (e *Engine) streamFinal(ctx context.Context, snap *eventstore.Snapshot, filter *eventstore.EventFilter, pp *patternPlan, j *joiner, proj *projector, stats *ExecStats, emit emitFunc, limitHint int) error {
	var (
		ferr     error
		produced int
	)
	// handle joins and projects one event; it returns false when the
	// stream must stop (error recorded in ferr, or demand satisfied).
	handle := func(ev *sysmon.Event) bool {
		cont := true
		j.join(ev, func(nb *binding) bool {
			produced++
			stats.Bindings++
			if produced > maxBindings {
				ferr = fmt.Errorf("engine: intermediate result exceeds %d bindings; add more selective constraints", maxBindings)
				cont = false
				return false
			}
			row, keep, err := proj.row(nb)
			if err != nil {
				ferr = err
				cont = false
				return false
			}
			if !keep {
				return true
			}
			if !emit(row) {
				cont = false
				return false
			}
			return true
		})
		return cont
	}

	units := snap.Units(filter)

	if e.cfg.DisableParallel {
		// Reference sequential walk. Collection touches only the
		// snapshot's immutable data; the join → project → emit work
		// happens with no locks held, so a consumer that stalls
		// mid-stream cannot block writers or other queries. Cache
		// lookups stay per-unit here: a satisfied limit stops the walk,
		// and prefetching lookups for units never consumed would skew
		// the reuse counters.
		cache := e.scache.Load()
		var fp scanFP
		if cache != nil {
			fp = scanFingerprint(filter, pp.evtPreds)
		}
		for i := range units {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: query aborted: %w", err)
			}
			batch, visited, complete, hit := e.unitBatch(ctx, cache, &units[i], filter, fp, pp.evtPreds, true)
			stats.ScannedEvents += visited
			countReuse(stats, cache, &units[i], hit)
			for k := range batch {
				if !handle(&batch[k]) {
					if ferr != nil {
						return ferr
					}
					return nil
				}
			}
			if !complete {
				return fmt.Errorf("engine: query aborted: %w", ctx.Err())
			}
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: query aborted: %w", err)
		}
		return nil
	}

	err := e.forEachUnitOrdered(ctx, units, filter, pp.evtPreds, stats, limitHint, func(batch []sysmon.Event) bool {
		for k := range batch {
			if !handle(&batch[k]) {
				return false
			}
		}
		return true
	})
	if ferr != nil {
		return ferr
	}
	return err
}

// joinCheckInterval is how many join probes or projected rows pass
// between context checks: joins and projection dominate execution on
// low-selectivity queries, so they must observe deadlines just as the
// scans do.
const joinCheckInterval = 8192

// unitCheckInterval is how many visited events a unit scan processes
// between context-cancellation checks.
const unitCheckInterval = 2048

// unitBatch returns one scan unit's events passing the filter and the
// per-event predicates. Sealed units consult the segment scan cache:
// a hit returns the cached batch with zero events visited; a miss scans
// the unit and, if the scan ran to completion, caches the batch for
// reuse by every later execution with the same fingerprint. complete is
// false when ctx aborted the scan mid-unit (the partial batch is never
// cached); hit reports whether the batch came from the cache.
func (e *Engine) unitBatch(ctx context.Context, cache *scanCache, u *eventstore.ScanUnit, filter *eventstore.EventFilter, fp scanFP, preds []evtPred, tryGet bool) (batch []sysmon.Event, visited int64, complete, hit bool) {
	cacheable := cache != nil && u.Sealed()
	if cacheable && tryGet {
		if b, ok := cache.get(fp, u.SegmentID()); ok {
			return b, 0, true, true
		}
	}
	complete = true
	u.Scan(filter, func(ev *sysmon.Event) bool {
		visited++
		if visited%unitCheckInterval == 0 && ctx.Err() != nil {
			complete = false
			return false
		}
		if evtPredsOK(preds, ev) {
			batch = append(batch, *ev)
		}
		return true
	})
	if complete && cacheable {
		cache.put(fp, u.SegmentID(), batch)
	}
	return batch, visited, complete, false
}

// countReuse updates the per-execution segment-reuse counters for one
// sealed-unit batch outcome.
func countReuse(stats *ExecStats, cache *scanCache, u *eventstore.ScanUnit, hit bool) {
	if cache == nil || !u.Sealed() {
		return
	}
	if hit {
		stats.SegmentHits++
	} else {
		stats.SegmentMisses++
	}
}

// scanPattern collects the events matching a pattern plan's filter and
// per-event predicates over the snapshot, reusing cached sealed-segment
// batches when the scan cache holds them. Unit scans run in parallel on
// the worker pool but batches concatenate in deterministic unit order —
// the exact order the sequential walk produces — so downstream joins
// see identical input either way. A cancelled ctx aborts the scan
// early; the scanned count then reflects only the events actually
// visited (the caller checks ctx.Err()).
func (e *Engine) scanPattern(ctx context.Context, snap *eventstore.Snapshot, filter *eventstore.EventFilter, pp *patternPlan, stats *ExecStats) []sysmon.Event {
	units := snap.Units(filter)
	var events []sysmon.Event

	if e.cfg.DisableParallel {
		cache := e.scache.Load()
		var fp scanFP
		if cache != nil {
			fp = scanFingerprint(filter, pp.evtPreds)
		}
		cached := cache.getAll(fp, units)
		for i := range units {
			if ctx.Err() != nil {
				break
			}
			var (
				batch    []sysmon.Event
				visited  int64
				complete = true
				hit      bool
			)
			if cached != nil && cached[i] != nil {
				batch, hit = cached[i], true
			} else {
				batch, visited, complete, hit = e.unitBatch(ctx, cache, &units[i], filter, fp, pp.evtPreds, false)
			}
			events = append(events, batch...)
			stats.ScannedEvents += visited
			countReuse(stats, cache, &units[i], hit)
			if !complete {
				break
			}
		}
		return events
	}

	e.forEachUnitOrdered(ctx, units, filter, pp.evtPreds, stats, 0, func(batch []sysmon.Event) bool {
		events = append(events, batch...)
		return true
	})
	return events
}

func evtPredsOK(preds []evtPred, ev *sysmon.Event) bool {
	for i := range preds {
		if !preds[i].eval(ev) {
			return false
		}
	}
	return true
}

// narrowByBindings intersects the filter's entity sets with the values
// already bound for the pattern's variables, so the storage layer can use
// posting lists instead of scanning.
func narrowByBindings(f *eventstore.EventFilter, sl *slots, pp *patternPlan, bindings []binding, subjBound, objBound bool) {
	const narrowLimit = 65536 // beyond this a set intersection costs more than it saves
	if len(bindings) > narrowLimit {
		return
	}
	if subjBound {
		set := eventstore.NewIDSet()
		slot := sl.vars[pp.subjVar]
		for i := range bindings {
			set.Add(bindings[i].ents[slot])
		}
		f.Subjects = f.Subjects.Intersect(set)
	}
	if objBound {
		set := eventstore.NewIDSet()
		slot := sl.vars[pp.objVar]
		for i := range bindings {
			set.Add(bindings[i].ents[slot])
		}
		f.Objects = f.Objects.Intersect(set)
	}
}

// narrowByTemporal tightens the filter's time range using temporal
// relations that connect the pattern to aliases that are already bound:
// if this pattern must come after some bound event, no event earlier than
// the earliest such binding can ever join.
func narrowByTemporal(f *eventstore.EventFilter, rels []ast.TemporalRel, sl *slots, alias string, bindings []binding, boundEvts map[string]bool) {
	if len(bindings) == 0 {
		return
	}
	for _, rel := range rels {
		var other string
		mustBeAfter := false // whether `alias` must come after `other`
		switch {
		case rel.Left == alias && boundEvts[rel.Right]:
			other = rel.Right
			mustBeAfter = rel.Op == "after"
		case rel.Right == alias && boundEvts[rel.Left]:
			other = rel.Left
			mustBeAfter = rel.Op == "before"
		default:
			continue
		}
		slot := sl.evts[other]
		if mustBeAfter {
			minTS := bindings[0].evts[slot].StartTS
			for i := 1; i < len(bindings); i++ {
				if ts := bindings[i].evts[slot].StartTS; ts < minTS {
					minTS = ts
				}
			}
			if f.From == 0 || minTS > f.From {
				f.From = minTS
			}
		} else {
			maxTS := bindings[0].evts[slot].StartTS
			for i := 1; i < len(bindings); i++ {
				if ts := bindings[i].evts[slot].StartTS; ts > maxTS {
					maxTS = ts
				}
			}
			if f.To == 0 || maxTS+1 < f.To {
				f.To = maxTS + 1
			}
		}
	}
}

// before reports whether event a precedes event b in the engine's total
// order: by start timestamp, then by event ID for determinism.
func before(a, b *sysmon.Event) bool {
	if a.StartTS != b.StartTS {
		return a.StartTS < b.StartTS
	}
	return a.ID < b.ID
}

// joiner extends bindings with the events of one pattern: it hash-joins
// on the shared entity variables and enforces the temporal relations
// connecting the new alias to bound aliases. The same joiner backs both
// the materializing prefix steps (joinStep) and the streamed final step.
type joiner struct {
	first bool // the pattern is the only one: events bind directly

	subjSlot, objSlot, evtSlot int
	nVars, nEvts               int
	subjShared                 bool
	objShared                  bool
	objBound                   bool
	checks                     []tcheck

	bindings []binding
	index    map[uint64][]int
}

func newJoiner(bindings []binding, sl *slots, pp *patternPlan, rels []ast.TemporalRel, boundVars, boundEvts map[string]bool, first bool) *joiner {
	j := &joiner{
		first:    first,
		subjSlot: sl.vars[pp.subjVar],
		objSlot:  sl.vars[pp.objVar],
		evtSlot:  sl.evts[pp.alias],
		nVars:    len(sl.vars),
		nEvts:    len(sl.evts),
		bindings: bindings,
	}
	if first {
		return j
	}
	j.subjShared = boundVars[pp.subjVar]
	j.objShared = boundVars[pp.objVar] && pp.objVar != pp.subjVar
	j.objBound = boundVars[pp.objVar]

	for _, rel := range rels {
		switch {
		case rel.Left == pp.alias && boundEvts[rel.Right]:
			j.checks = append(j.checks, tcheck{otherSlot: sl.evts[rel.Right], newIsLeft: true, op: rel.Op, within: int64(rel.Within)})
		case rel.Right == pp.alias && boundEvts[rel.Left]:
			j.checks = append(j.checks, tcheck{otherSlot: sl.evts[rel.Left], newIsLeft: false, op: rel.Op, within: int64(rel.Within)})
		}
	}

	j.index = make(map[uint64][]int, len(bindings))
	for i := range bindings {
		k := j.key(&bindings[i])
		j.index[k] = append(j.index[k], i)
	}
	return j
}

func (j *joiner) key(b *binding) uint64 {
	var k uint64
	if j.subjShared {
		k = uint64(b.ents[j.subjSlot])
	}
	if j.objShared {
		k = k<<32 | uint64(b.ents[j.objSlot])
	}
	return k
}

func (j *joiner) evKey(ev *sysmon.Event) uint64 {
	var k uint64
	if j.subjShared {
		k = uint64(ev.Subject)
	}
	if j.objShared {
		k = k<<32 | uint64(ev.Object)
	}
	return k
}

// probeCost approximates the work of joining one event, for the caller's
// amortized context checks.
func (j *joiner) probeCost(ev *sysmon.Event) int {
	if j.first {
		return 1
	}
	return len(j.index[j.evKey(ev)]) + 1
}

// join yields every new binding the event produces against the indexed
// prefix bindings. yield returning false stops the iteration.
func (j *joiner) join(ev *sysmon.Event, yield func(*binding) bool) {
	if j.first {
		nb := binding{
			ents: make([]sysmon.EntityID, j.nVars),
			evts: make([]sysmon.Event, j.nEvts),
		}
		nb.ents[j.subjSlot] = ev.Subject
		nb.ents[j.objSlot] = ev.Object
		nb.evts[j.evtSlot] = *ev
		yield(&nb)
		return
	}
	for _, bi := range j.index[j.evKey(ev)] {
		b := &j.bindings[bi]
		// a same-variable subject+object (rare self-loop) needs both
		// endpoints checked even though only one was hashed
		if j.subjShared && b.ents[j.subjSlot] != ev.Subject {
			continue
		}
		if j.objBound && b.ents[j.objSlot] != ev.Object {
			continue
		}
		if !temporalOK(j.checks, b, ev) {
			continue
		}
		nb := binding{
			ents: append([]sysmon.EntityID{}, b.ents...),
			evts: append([]sysmon.Event{}, b.evts...),
		}
		nb.ents[j.subjSlot] = ev.Subject
		nb.ents[j.objSlot] = ev.Object
		nb.evts[j.evtSlot] = *ev
		if !yield(&nb) {
			return
		}
	}
}

// joinStep extends the current bindings with the events matched for one
// prefix pattern, materializing the joined bindings for the next step.
func joinStep(ctx context.Context, bindings []binding, events []sysmon.Event, sl *slots, pp *patternPlan, rels []ast.TemporalRel, boundVars, boundEvts map[string]bool) ([]binding, error) {
	j := newJoiner(bindings, sl, pp, rels, boundVars, boundEvts, false)
	var out []binding
	var jerr error
	probes := 0
	for i := range events {
		ev := &events[i]
		if probes += j.probeCost(ev); probes >= joinCheckInterval {
			probes = 0
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: query aborted: %w", err)
			}
		}
		j.join(ev, func(nb *binding) bool {
			out = append(out, *nb)
			if len(out) > maxBindings {
				jerr = fmt.Errorf("engine: intermediate result exceeds %d bindings; add more selective constraints", maxBindings)
				return false
			}
			return true
		})
		if jerr != nil {
			return nil, jerr
		}
	}
	return out, nil
}

// tcheck is one temporal-relation check between a newly scanned event and
// an already-bound alias.
type tcheck struct {
	otherSlot int
	newIsLeft bool // the new event plays rel.Left
	op        string
	within    int64
}

func temporalOK(checks []tcheck, b *binding, ev *sysmon.Event) bool {
	for _, c := range checks {
		other := &b.evts[c.otherSlot]
		left, right := ev, other
		if !c.newIsLeft {
			left, right = other, ev
		}
		if c.op == "after" {
			left, right = right, left
		}
		// now require left before right
		if !before(left, right) {
			return false
		}
		if c.within > 0 && right.StartTS-left.StartTS > c.within {
			return false
		}
	}
	return true
}

// projector renders the return clause for one binding at a time,
// carrying the distinct-dedup state across the stream.
type projector struct {
	e    *Engine
	q    *ast.MultieventQuery
	info *semantic.Info
	sl   *slots
	seen map[string]struct{} // non-nil iff the query is distinct
}

func newProjector(e *Engine, q *ast.MultieventQuery, info *semantic.Info, sl *slots) *projector {
	p := &projector{e: e, q: q, info: info, sl: sl}
	if q.Distinct {
		p.seen = map[string]struct{}{}
	}
	return p
}

// row renders one binding. keep is false when the row is a distinct
// duplicate and must be dropped.
func (p *projector) row(b *binding) (row []string, keep bool, err error) {
	row = make([]string, len(p.q.Return))
	for j := range p.q.Return {
		cell, err := p.e.projectExpr(p.q.Return[j].Expr, p.info, p.sl, b)
		if err != nil {
			return nil, false, err
		}
		row[j] = cell
	}
	if p.seen != nil {
		k := strings.Join(row, "\t")
		if _, dup := p.seen[k]; dup {
			return nil, false, nil
		}
		p.seen[k] = struct{}{}
	}
	return row, true, nil
}

// projectExpr renders one return expression for a binding.
func (e *Engine) projectExpr(expr ast.Expr, info *semantic.Info, sl *slots, b *binding) (string, error) {
	switch x := expr.(type) {
	case *ast.AttrExpr:
		if t, ok := info.Vars[x.Var]; ok {
			id := b.ents[sl.vars[x.Var]]
			return e.store.Dict().Attr(t, id, x.Attr), nil
		}
		if _, ok := info.Events[x.Var]; ok {
			ev := b.evts[sl.evts[x.Var]]
			v, ok := sysmon.EventAttr(&ev, x.Attr)
			if !ok {
				return "", fmt.Errorf("engine: unknown event attribute %q", x.Attr)
			}
			return v, nil
		}
		return "", fmt.Errorf("engine: unknown variable %q", x.Var)
	case *ast.VarExpr:
		if _, ok := info.Events[x.Name]; ok {
			ev := b.evts[sl.evts[x.Name]]
			return numfmt.Format(float64(ev.ID)), nil
		}
		return "", fmt.Errorf("engine: unresolved variable %q", x.Name)
	case *ast.NumberLit:
		return numfmt.Format(x.Val), nil
	case *ast.StringLit:
		return x.Val, nil
	default:
		return "", fmt.Errorf("engine: unsupported return expression %s", ast.ExprString(expr))
	}
}
