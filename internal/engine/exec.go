package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/numfmt"
	"github.com/aiql/aiql/internal/sysmon"
)

// maxBindings bounds intermediate join results to keep a runaway query
// from exhausting memory.
const maxBindings = 4 << 20

// binding is one partial match: entity variable assignments plus the
// events matched so far, stored in plan-assigned slots.
type binding struct {
	ents []sysmon.EntityID
	evts []sysmon.Event
}

// slots assigns dense indices to entity variables and event aliases.
type slots struct {
	vars map[string]int
	evts map[string]int
}

func newSlots(plan *queryPlan) *slots {
	s := &slots{vars: map[string]int{}, evts: map[string]int{}}
	for _, pp := range plan.patterns {
		if _, ok := s.vars[pp.subjVar]; !ok {
			s.vars[pp.subjVar] = len(s.vars)
		}
		if _, ok := s.vars[pp.objVar]; !ok {
			s.vars[pp.objVar] = len(s.vars)
		}
		if _, ok := s.evts[pp.alias]; !ok {
			s.evts[pp.alias] = len(s.evts)
		}
	}
	return s
}

// execMultievent runs the scheduled plan with progressive binding joins.
// Cancelling ctx aborts the current pattern scan and returns the
// cancellation error; res keeps the statistics accumulated so far.
func (e *Engine) execMultievent(ctx context.Context, q *ast.MultieventQuery, info *semantic.Info, plan *queryPlan, res *Result) error {
	sl := newSlots(plan)
	var bindings []binding
	boundVars := map[string]bool{}
	boundEvts := map[string]bool{}

	for step, pp := range plan.patterns {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: query aborted: %w", err)
		}
		res.Stats.PatternOrder = append(res.Stats.PatternOrder, pp.alias)
		filter := pp.filter // copy; we will narrow it

		subjBound := boundVars[pp.subjVar]
		objBound := boundVars[pp.objVar]
		if step > 0 {
			narrowByBindings(&filter, sl, pp, bindings, subjBound, objBound)
			narrowByTemporal(&filter, plan.rels, sl, pp.alias, bindings, boundEvts)
		}

		events, scanned := e.scanPattern(ctx, &filter, pp)
		res.Stats.ScannedEvents += scanned
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: query aborted: %w", err)
		}
		if step == 0 {
			res.Stats.Partitions = e.store.NumPartitions()
			bindings = make([]binding, 0, len(events))
			for i := range events {
				b := binding{
					ents: make([]sysmon.EntityID, len(sl.vars)),
					evts: make([]sysmon.Event, len(sl.evts)),
				}
				b.ents[sl.vars[pp.subjVar]] = events[i].Subject
				b.ents[sl.vars[pp.objVar]] = events[i].Object
				b.evts[sl.evts[pp.alias]] = events[i]
				bindings = append(bindings, b)
			}
		} else {
			var err error
			bindings, err = joinStep(ctx, bindings, events, sl, pp, plan.rels, boundVars, boundEvts)
			if err != nil {
				return err
			}
		}
		boundVars[pp.subjVar] = true
		boundVars[pp.objVar] = true
		boundEvts[pp.alias] = true
		res.Stats.Bindings += len(bindings)
		if len(bindings) == 0 {
			break // no match can complete
		}
		if len(bindings) > maxBindings {
			return fmt.Errorf("engine: intermediate result exceeds %d bindings; add more selective constraints", maxBindings)
		}
	}

	return e.project(ctx, q, info, sl, bindings, res)
}

// joinCheckInterval is how many join probes or projected rows pass
// between context checks: joins and projection dominate execution on
// low-selectivity queries, so they must observe deadlines just as the
// scans do.
const joinCheckInterval = 8192

// scanPattern collects the events matching a pattern plan's filter and
// per-event predicates, using parallel partition scans unless disabled.
// A cancelled ctx aborts the scan early; the returned scanned count then
// reflects only the events actually visited (the caller checks ctx.Err()).
func (e *Engine) scanPattern(ctx context.Context, filter *eventstore.EventFilter, pp *patternPlan) ([]sysmon.Event, int64) {
	var (
		mu      sync.Mutex
		events  []sysmon.Event
		scanned int64
	)
	if e.cfg.DisableParallel {
		e.store.Scan(ctx, filter, func(ev *sysmon.Event) bool {
			scanned++
			if evtPredsOK(pp.evtPreds, ev) {
				events = append(events, *ev)
			}
			return true
		})
		return events, scanned
	}
	e.store.ScanPartitions(ctx, filter,
		func(ev *sysmon.Event) bool { return evtPredsOK(pp.evtPreds, ev) },
		func(batch []sysmon.Event, visited int64) {
			mu.Lock()
			events = append(events, batch...)
			scanned += visited
			mu.Unlock()
		})
	// canonical order: parallel partition scans return events in
	// nondeterministic interleaving
	sort.Slice(events, func(i, j int) bool { return events[i].ID < events[j].ID })
	return events, scanned
}

func evtPredsOK(preds []evtPred, ev *sysmon.Event) bool {
	for i := range preds {
		if !preds[i].eval(ev) {
			return false
		}
	}
	return true
}

// narrowByBindings intersects the filter's entity sets with the values
// already bound for the pattern's variables, so the storage layer can use
// posting lists instead of scanning.
func narrowByBindings(f *eventstore.EventFilter, sl *slots, pp *patternPlan, bindings []binding, subjBound, objBound bool) {
	const narrowLimit = 65536 // beyond this a set intersection costs more than it saves
	if len(bindings) > narrowLimit {
		return
	}
	if subjBound {
		set := eventstore.NewIDSet()
		slot := sl.vars[pp.subjVar]
		for i := range bindings {
			set.Add(bindings[i].ents[slot])
		}
		f.Subjects = f.Subjects.Intersect(set)
	}
	if objBound {
		set := eventstore.NewIDSet()
		slot := sl.vars[pp.objVar]
		for i := range bindings {
			set.Add(bindings[i].ents[slot])
		}
		f.Objects = f.Objects.Intersect(set)
	}
}

// narrowByTemporal tightens the filter's time range using temporal
// relations that connect the pattern to aliases that are already bound:
// if this pattern must come after some bound event, no event earlier than
// the earliest such binding can ever join.
func narrowByTemporal(f *eventstore.EventFilter, rels []ast.TemporalRel, sl *slots, alias string, bindings []binding, boundEvts map[string]bool) {
	if len(bindings) == 0 {
		return
	}
	for _, rel := range rels {
		var other string
		mustBeAfter := false // whether `alias` must come after `other`
		switch {
		case rel.Left == alias && boundEvts[rel.Right]:
			other = rel.Right
			mustBeAfter = rel.Op == "after"
		case rel.Right == alias && boundEvts[rel.Left]:
			other = rel.Left
			mustBeAfter = rel.Op == "before"
		default:
			continue
		}
		slot := sl.evts[other]
		if mustBeAfter {
			minTS := bindings[0].evts[slot].StartTS
			for i := 1; i < len(bindings); i++ {
				if ts := bindings[i].evts[slot].StartTS; ts < minTS {
					minTS = ts
				}
			}
			if f.From == 0 || minTS > f.From {
				f.From = minTS
			}
		} else {
			maxTS := bindings[0].evts[slot].StartTS
			for i := 1; i < len(bindings); i++ {
				if ts := bindings[i].evts[slot].StartTS; ts > maxTS {
					maxTS = ts
				}
			}
			if f.To == 0 || maxTS+1 < f.To {
				f.To = maxTS + 1
			}
		}
	}
}

// before reports whether event a precedes event b in the engine's total
// order: by start timestamp, then by event ID for determinism.
func before(a, b *sysmon.Event) bool {
	if a.StartTS != b.StartTS {
		return a.StartTS < b.StartTS
	}
	return a.ID < b.ID
}

// joinStep extends the current bindings with the events matched for one
// pattern, hash-joining on the shared entity variables and enforcing the
// temporal relations that connect the new alias to bound aliases.
func joinStep(ctx context.Context, bindings []binding, events []sysmon.Event, sl *slots, pp *patternPlan, rels []ast.TemporalRel, boundVars, boundEvts map[string]bool) ([]binding, error) {
	subjSlot, objSlot := sl.vars[pp.subjVar], sl.vars[pp.objVar]
	evtSlot := sl.evts[pp.alias]
	subjShared := boundVars[pp.subjVar]
	objShared := boundVars[pp.objVar] && pp.objVar != pp.subjVar

	// temporal checks applicable at this step
	var checks []tcheck
	for _, rel := range rels {
		switch {
		case rel.Left == pp.alias && boundEvts[rel.Right]:
			checks = append(checks, tcheck{otherSlot: sl.evts[rel.Right], newIsLeft: true, op: rel.Op, within: int64(rel.Within)})
		case rel.Right == pp.alias && boundEvts[rel.Left]:
			checks = append(checks, tcheck{otherSlot: sl.evts[rel.Left], newIsLeft: false, op: rel.Op, within: int64(rel.Within)})
		}
	}

	key := func(b *binding) uint64 {
		var k uint64
		if subjShared {
			k = uint64(b.ents[subjSlot])
		}
		if objShared {
			k = k<<32 | uint64(b.ents[objSlot])
		}
		return k
	}
	evKey := func(ev *sysmon.Event) uint64 {
		var k uint64
		if subjShared {
			k = uint64(ev.Subject)
		}
		if objShared {
			k = k<<32 | uint64(ev.Object)
		}
		return k
	}

	index := make(map[uint64][]int, len(bindings))
	for i := range bindings {
		k := key(&bindings[i])
		index[k] = append(index[k], i)
	}

	var out []binding
	probes := 0
	for i := range events {
		ev := &events[i]
		matches := index[evKey(ev)]
		if probes += len(matches) + 1; probes >= joinCheckInterval {
			probes = 0
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: query aborted: %w", err)
			}
		}
		for _, bi := range matches {
			b := &bindings[bi]
			// a same-variable subject+object (rare self-loop) needs both
			// endpoints checked even though only one was hashed
			if subjShared && b.ents[subjSlot] != ev.Subject {
				continue
			}
			if boundVars[pp.objVar] && b.ents[objSlot] != ev.Object {
				continue
			}
			if !temporalOK(checks, b, ev) {
				continue
			}
			nb := binding{
				ents: append([]sysmon.EntityID{}, b.ents...),
				evts: append([]sysmon.Event{}, b.evts...),
			}
			nb.ents[subjSlot] = ev.Subject
			nb.ents[objSlot] = ev.Object
			nb.evts[evtSlot] = *ev
			out = append(out, nb)
			if len(out) > maxBindings {
				return nil, fmt.Errorf("engine: intermediate result exceeds %d bindings; add more selective constraints", maxBindings)
			}
		}
	}
	return out, nil
}

// tcheck is one temporal-relation check between a newly scanned event and
// an already-bound alias.
type tcheck struct {
	otherSlot int
	newIsLeft bool // the new event plays rel.Left
	op        string
	within    int64
}

func temporalOK(checks []tcheck, b *binding, ev *sysmon.Event) bool {
	for _, c := range checks {
		other := &b.evts[c.otherSlot]
		left, right := ev, other
		if !c.newIsLeft {
			left, right = other, ev
		}
		if c.op == "after" {
			left, right = right, left
		}
		// now require left before right
		if !before(left, right) {
			return false
		}
		if c.within > 0 && right.StartTS-left.StartTS > c.within {
			return false
		}
	}
	return true
}

// project evaluates the return clause over the completed bindings.
func (e *Engine) project(ctx context.Context, q *ast.MultieventQuery, info *semantic.Info, sl *slots, bindings []binding, res *Result) error {
	res.Columns = info.Columns
	seen := map[string]struct{}{}
	for i := range bindings {
		if i%joinCheckInterval == joinCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: query aborted: %w", err)
			}
		}
		row := make([]string, len(q.Return))
		for j := range q.Return {
			cell, err := e.projectExpr(q.Return[j].Expr, info, sl, &bindings[i])
			if err != nil {
				return err
			}
			row[j] = cell
		}
		if q.Distinct {
			k := strings.Join(row, "\t")
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		res.Rows = append(res.Rows, row)
	}
	res.SortRows()
	return nil
}

// projectExpr renders one return expression for a binding.
func (e *Engine) projectExpr(expr ast.Expr, info *semantic.Info, sl *slots, b *binding) (string, error) {
	switch x := expr.(type) {
	case *ast.AttrExpr:
		if t, ok := info.Vars[x.Var]; ok {
			id := b.ents[sl.vars[x.Var]]
			return e.store.Dict().Attr(t, id, x.Attr), nil
		}
		if _, ok := info.Events[x.Var]; ok {
			ev := b.evts[sl.evts[x.Var]]
			v, ok := sysmon.EventAttr(&ev, x.Attr)
			if !ok {
				return "", fmt.Errorf("engine: unknown event attribute %q", x.Attr)
			}
			return v, nil
		}
		return "", fmt.Errorf("engine: unknown variable %q", x.Var)
	case *ast.VarExpr:
		if _, ok := info.Events[x.Name]; ok {
			ev := b.evts[sl.evts[x.Name]]
			return numfmt.Format(float64(ev.ID)), nil
		}
		return "", fmt.Errorf("engine: unresolved variable %q", x.Name)
	case *ast.NumberLit:
		return numfmt.Format(x.Val), nil
	case *ast.StringLit:
		return x.Val, nil
	default:
		return "", fmt.Errorf("engine: unsupported return expression %s", ast.ExprString(expr))
	}
}
