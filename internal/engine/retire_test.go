package engine

import (
	"context"
	"reflect"
	"testing"
)

// Compaction retires segments and the engine must re-point its scan
// cache: retired entries are dropped immediately, a re-run returns
// identical rows, and the merged segment is cached under its own id so
// the query is fully reusable again afterwards.
func TestScanCacheRetiredByCompaction(t *testing.T) {
	s := buildSegmentedStore(t, 16, 160, 0)
	before := s.NumSegments()
	e := NewWithConfig(s, Config{ScanCacheBytes: 8 << 20})

	cold, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	warmed := e.ScanCacheStats()
	if warmed.Entries == 0 {
		t.Fatal("cold run cached nothing")
	}

	res := s.Compact()
	if res.SegmentsRetired == 0 {
		t.Fatalf("compaction retired nothing (segments before: %d)", before)
	}
	afterCompact := e.ScanCacheStats()
	if afterCompact.Entries >= warmed.Entries {
		t.Fatalf("retirement left %d entries, had %d before", afterCompact.Entries, warmed.Entries)
	}
	if afterCompact.Bytes >= warmed.Bytes {
		t.Fatalf("retirement did not release bytes: %d vs %d", afterCompact.Bytes, warmed.Bytes)
	}

	requery, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(requery.Rows, cold.Rows) {
		t.Fatal("rows differ after compaction")
	}
	// the re-run cached the merged segments; a third run is all hits
	hitsBefore := e.ScanCacheStats().Hits
	third, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third.Rows, cold.Rows) {
		t.Fatal("rows differ on the re-pointed cache")
	}
	st := e.ScanCacheStats()
	if st.Hits <= hitsBefore {
		t.Fatal("no hits against the merged segments' entries")
	}
	if third.Stats.SegmentMisses != 0 {
		t.Fatalf("third run missed %d segments, want 0", third.Stats.SegmentMisses)
	}
}
