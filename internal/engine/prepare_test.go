package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// query1Param is query1 with the investigation's variable parts
// parameterized: the day, the host, and the tool being investigated.
const query1Param = `
(at $day)
agentid = $agent
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4[$tool] read file f1 as evt3
proc p4 read || write ip i1[dstip="%.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1
`

func TestPrepareSignature(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(query1Param)
	if err != nil {
		t.Fatal(err)
	}
	want := []ParamSpec{
		{Name: "day", Type: ParamTime},
		{Name: "agent", Type: ParamNumber},
		{Name: "tool", Type: ParamString},
	}
	if !reflect.DeepEqual(p.Params(), want) {
		t.Errorf("signature = %+v, want %+v", p.Params(), want)
	}
	if p.Kind() != "multievent" {
		t.Errorf("kind = %q", p.Kind())
	}
	if len(p.Columns()) != 6 {
		t.Errorf("columns = %v", p.Columns())
	}
}

func TestPreparedExecMatchesLiteralExecution(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(query1Param)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecutePrepared(context.Background(), p, Params{
		"day": "05/10/2018", "agent": 7, "tool": "%sbblv.exe",
	})
	if err != nil {
		t.Fatal(err)
	}
	lit, err := e.Execute(context.Background(), query1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, lit.Rows) {
		t.Errorf("prepared rows differ from literal execution:\n%s\nvs\n%s", res.Table(), lit.Table())
	}
	// a different binding selects nothing
	empty, err := e.ExecutePrepared(context.Background(), p, Params{
		"day": "05/10/2018", "agent": 7, "tool": "%nosuch.exe",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 0 {
		t.Errorf("unexpected rows for non-matching binding:\n%s", empty.Table())
	}
}

func TestPreparedExecuteManyDifferentBindings(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(`proc p[$exe] write file f return distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	for exe, wantRows := range map[string]int{"%sqlservr.exe": 1, "%svchost.exe": 1, "%cmd.exe": 0, "%": 2} {
		res, err := e.ExecutePrepared(context.Background(), p, Params{"exe": exe})
		if err != nil {
			t.Fatalf("%s: %v", exe, err)
		}
		if len(res.Rows) != wantRows {
			t.Errorf("binding %q: %d rows, want %d", exe, len(res.Rows), wantRows)
		}
	}
}

func TestPreparedDependencyQuery(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(`agentid = $agent
backward: ip i1[dstip = $dst] <-[write] proc p ->[read] file f
return distinct p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != "dependency" {
		t.Fatalf("kind = %q", p.Kind())
	}
	res, err := e.ExecutePrepared(context.Background(), p, Params{"agent": 7, "dst": "203.0.113.129"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows:\n%s", res.Table())
	}
	if res.Rows[0][0] != "sbblv.exe" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestPreparedAnomalyQuery(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(`window = 10 min, step = 10 min
proc p write file f {agentid = $agent, amount > $floor} as evt
return p, sum(evt.amount) as amt
group by p
having amt > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != "anomaly" {
		t.Fatalf("kind = %q", p.Kind())
	}
	res, err := e.ExecutePrepared(context.Background(), p, Params{"agent": 7, "floor": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "sqlservr.exe" {
		t.Fatalf("rows:\n%s", res.Table())
	}
	// a floor above every write volume empties the result
	res, err = e.ExecutePrepared(context.Background(), p, Params{"agent": 7, "floor": 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows above floor:\n%s", res.Table())
	}
}

func TestBindErrors(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(query1Param)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		params Params
		code   ParamErrCode
	}{
		{"unknown", Params{"day": "05/10/2018", "agent": 7, "tool": "%x", "bogus": 1}, ParamUnknown},
		{"missing", Params{"day": "05/10/2018", "agent": 7}, ParamMissing},
		{"nil params", nil, ParamMissing},
		{"number gets word", Params{"day": "05/10/2018", "agent": "seven", "tool": "%x"}, ParamMismatch},
		{"time gets garbage", Params{"day": "not a date", "agent": 7, "tool": "%x"}, ParamMismatch},
		{"time gets number", Params{"day": 20180510, "agent": 7, "tool": "%x"}, ParamMismatch},
	}
	for _, tc := range cases {
		_, err := p.Bind(tc.params)
		if err == nil {
			t.Errorf("%s: Bind succeeded", tc.name)
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) || pe.Code != tc.code {
			t.Errorf("%s: error %v, want code %s", tc.name, err, tc.code)
		}
	}
}

func TestBindDoesNotMutateTemplate(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(`(at $day) proc p[$exe] start proc q {agentid = $agent} return p, q`)
	if err != nil {
		t.Fatal(err)
	}
	before := ast.Print(p.mq)
	for i := 0; i < 3; i++ {
		if _, err := p.Bind(Params{"day": "05/10/2018", "exe": fmt.Sprintf("%%tool%d%%", i), "agent": i}); err != nil {
			t.Fatal(err)
		}
	}
	if after := ast.Print(p.mq); after != before {
		t.Errorf("template mutated by Bind:\n%s\nvs\n%s", before, after)
	}
	if p.mq.Head_.Window.AtParam != "day" {
		t.Error("window placeholder resolved in template")
	}
}

// TestBindWildcardsDecideOperator: an equality placeholder bound to a
// wildcard string executes as LIKE, a plain string as exact equality.
func TestBindWildcardsDecideOperator(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(`proc p[$exe] start proc q return distinct p`)
	if err != nil {
		t.Fatal(err)
	}
	like, err := e.ExecutePrepared(context.Background(), p, Params{"exe": "%cmd%"})
	if err != nil {
		t.Fatal(err)
	}
	if len(like.Rows) != 1 {
		t.Errorf("wildcard binding matched %d rows, want 1", len(like.Rows))
	}
	exact, err := e.ExecutePrepared(context.Background(), p, Params{"exe": "cmd.exe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Rows) != 1 {
		t.Errorf("exact binding matched %d rows, want 1", len(exact.Rows))
	}
	prefix, err := e.ExecutePrepared(context.Background(), p, Params{"exe": "cmd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prefix.Rows) != 0 {
		t.Errorf("exact binding %q matched %d rows, want 0 (no LIKE semantics without wildcards)", "cmd", len(prefix.Rows))
	}
}

func TestBindTimeWindow(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(`(from $a to $b) proc p["%sbblv.exe"] read file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecutePrepared(context.Background(), p, Params{"a": "05/10/2018", "b": "05/11/2018"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows:\n%s", res.Table())
	}
	// empty window rejected at bind time
	_, err = p.Bind(Params{"a": "05/11/2018", "b": "05/10/2018"})
	var pe *ParamError
	if !errors.As(err, &pe) {
		t.Errorf("empty window error = %v", err)
	}
}

func TestFingerprintNormalizesFormatting(t *testing.T) {
	a := Fingerprint("proc p[$exe]   start proc q\nreturn p")
	b := Fingerprint("proc p[$exe] start proc q return p")
	if a != b {
		t.Error("reformatting changed the fingerprint")
	}
	if Fingerprint("proc p[$other] start proc q return p") == a {
		t.Error("different template shares a fingerprint")
	}
}

// TestUnboundParamRejectedByDirectExecution: executing a parameterized
// AST without binding is an explicit error, not a silent mismatch.
func TestUnboundParamRejectedByDirectExecution(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	if _, err := e.Execute(context.Background(), `proc p[$exe] start proc q return p`); err == nil {
		t.Error("Execute of a parameterized query without bindings succeeded")
	}
}

// TestPreparedConcurrentExecutionsUnderAppend prepares once and
// executes from many goroutines while a writer appends and seals —
// the -race check that one immutable Prepared serves concurrent
// executions across store mutations.
func TestPreparedConcurrentExecutionsUnderAppend(t *testing.T) {
	opts := eventstore.DefaultOptions()
	opts.SegmentEvents = 64 // force frequent seals under the writer
	s := buildAttackStore(t, opts)
	e := New(s)
	p, err := e.Prepare(`proc p[$exe] write file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: append + seal continuously
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Append(eventstore.Record{
				AgentID: uint32(1 + i%4), Subject: proc("writer.exe"), Op: sysmon.OpWrite,
				ObjType: sysmon.EntityFile, ObjFile: sysmon.File{Path: fmt.Sprintf(`C:\w\%d.log`, i)},
				StartTS: ts(10 + i),
			})
			if i%50 == 0 {
				s.Flush()
			}
		}
	}()

	const readers = 8
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			exes := []string{"%writer.exe", "%sqlservr.exe", "%"}
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				res, err := e.ExecutePrepared(context.Background(), p, Params{"exe": exes[r%len(exes)]})
				if err != nil {
					errs <- err
					return
				}
				_ = res.Len()
			}
			errs <- nil
		}(r)
	}
	for r := 0; r < readers; r++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestExplainPreparedUsesFrozenOrder(t *testing.T) {
	e := New(buildAttackStore(t, eventstore.DefaultOptions()))
	p, err := e.Prepare(query1Param)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := e.ExplainPrepared(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %+v", entries)
	}
	aliases := map[string]bool{}
	for _, en := range entries {
		if en.Estimate < 0 {
			t.Errorf("negative estimate: %+v", en)
		}
		aliases[en.Alias] = true
	}
	for _, want := range []string{"evt1", "evt2", "evt3", "evt4"} {
		if !aliases[want] {
			t.Errorf("alias %s missing from %+v", want, entries)
		}
	}
	// the frozen order is stable across calls
	again, err := e.ExplainPrepared(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if entries[i].Alias != again[i].Alias {
			t.Errorf("explain order unstable: %+v vs %+v", entries, again)
		}
	}
}

// TestParameterlessPlanReuse: a literal statement reuses its
// prepare-time plan while the store is unchanged (including from many
// goroutines at once), and recompiles after a commit moves the store.
func TestParameterlessPlanReuse(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	e := New(s)
	p, err := e.Prepare(`proc p["%worker%"] write file f return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if p.plan == nil {
		t.Fatal("parameterless statement kept no prepare-time plan")
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if res, err := e.ExecutePrepared(context.Background(), p, nil); err != nil || res.Len() != 0 {
					t.Errorf("exec: %v (%d rows)", err, res.Len())
					return
				}
			}
		}()
	}
	wg.Wait()

	// a commit invalidates the frozen candidate sets: the next
	// execution recompiles and sees the new entity
	s.Append(eventstore.Record{
		AgentID: 7, Subject: proc("worker.exe"), Op: sysmon.OpWrite,
		ObjType: sysmon.EntityFile, ObjFile: sysmon.File{Path: `C:\w\new.log`}, StartTS: ts(30),
	})
	s.Flush()
	res, err := e.ExecutePrepared(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("post-append execution missed the new event:\n%s", res.Table())
	}
}
