// Package engine implements the AIQL optimized query execution engine.
//
// The engine leverages the domain-specific characteristics of system
// monitoring data and the semantics of the query to schedule execution
// (paper §2.3): for a multievent query it synthesizes a data query per
// event pattern, prioritizes patterns with higher pruning power, and
// partitions work along the temporal and spatial dimensions for parallel
// execution; a dependency query is compiled to an equivalent multievent
// query; an anomaly query partitions events into sliding windows,
// aggregates, and filters with access to historical windows.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/workpool"
)

// Config toggles the engine's optimizations, for the scheduling ablation
// experiment (E6 in DESIGN.md).
type Config struct {
	// DisableReordering executes event patterns in syntactic order
	// instead of pruning-power order.
	DisableReordering bool
	// DisableParallel scans partitions sequentially.
	DisableParallel bool
	// ScanCacheBytes, when positive, enables the segment scan cache with
	// the given byte budget: per-pattern filtered scan results over
	// sealed segments are cached by (filter fingerprint, segment id) and
	// reused across executions, so an append only re-scans the unsealed
	// tail and fresh segments. Zero disables the cache — the default, so
	// ablation benchmarks and tests measure raw scans unless they opt in.
	ScanCacheBytes int64
	// ScanWorkers caps one query's scan parallelism: the merging
	// goroutine itself plus up to ScanWorkers-1 helpers from a
	// dedicated pool (so 1 means fully inline scanning). Zero — the
	// default — draws helpers from the process-wide shared pool sized
	// to GOMAXPROCS; SetScanPool overrides either with an explicitly
	// shared pool so several engines are governed together.
	ScanWorkers int
}

// Engine executes AIQL queries against an event store. Every execution
// pins one lock-free store snapshot and runs against it end to end, so
// concurrent appends and seals never move data under a running query.
type Engine struct {
	store  *eventstore.Store
	cfg    Config
	scache atomic.Pointer[scanCache]
	pool   atomic.Pointer[workpool.Pool]

	// resolveMu guards resolved, the entity-resolution memo keyed by
	// attribute filter + dictionary identity + entity count (see
	// cachedEntityMatch).
	resolveMu sync.Mutex
	resolved  map[entityMatchKey]entityMatchEntry
}

// New creates an engine over store with the fully optimized configuration.
func New(store *eventstore.Store) *Engine {
	return NewWithConfig(store, Config{})
}

// NewWithConfig creates an engine with explicit optimization toggles.
func NewWithConfig(store *eventstore.Store, cfg Config) *Engine {
	e := &Engine{store: store, cfg: cfg}
	if cfg.ScanCacheBytes > 0 {
		e.scache.Store(newScanCache(cfg.ScanCacheBytes))
	}
	if cfg.ScanWorkers > 0 {
		// Scan helpers are CPU-bound, so a pool wider than the machine
		// only adds scheduling overhead: clamp to the cores available.
		e.pool.Store(workpool.New(min(cfg.ScanWorkers, runtime.GOMAXPROCS(0)) - 1))
	} else {
		e.pool.Store(workpool.Default())
	}
	// Re-point the scan cache when compaction retires segments: their
	// cached batches can never be requested again (new snapshots carry
	// the merged segment, which is scanned and cached under its own id).
	store.OnSegmentRetire(func(segIDs []uint64) {
		e.scache.Load().retire(segIDs)
	})
	return e
}

// Store returns the engine's event store.
func (e *Engine) Store() *eventstore.Store { return e.store }

// SetScanCache installs (or, with a non-positive budget, removes) the
// segment scan cache. Safe for concurrent use; in-flight executions keep
// the cache instance they started with.
func (e *Engine) SetScanCache(maxBytes int64) {
	e.scache.Store(newScanCache(maxBytes))
}

// ScanCacheStats reports the segment scan cache's counters; zero values
// when the cache is disabled.
func (e *Engine) ScanCacheStats() ScanCacheStats {
	return e.scache.Load().stats()
}

// SetScanPool installs the worker pool parallel scans draw helpers
// from — typically one pool shared across every engine in the process,
// so total scan CPU is capped in one place alongside the service
// admission pool. A nil pool is ignored. Safe for concurrent use;
// in-flight executions keep the pool they started with.
func (e *Engine) SetScanPool(p *workpool.Pool) {
	if p != nil {
		e.pool.Store(p)
	}
}

// ScanPool returns the worker pool parallel scans currently use.
func (e *Engine) ScanPool() *workpool.Pool { return e.pool.Load() }

// Execute compiles and runs one AIQL query — the bind-then-run form of
// a one-shot execution (Prepare + ExecutePrepared with no bindings).
// The context bounds execution: cancellation or an expired deadline
// aborts partition scans and binding joins mid-flight. Queries with
// `$name` parameters need Prepare + ExecutePrepared to supply bindings.
func (e *Engine) Execute(ctx context.Context, src string) (*Result, error) {
	psp := obs.SpanFromContext(ctx).Child("parse")
	p, err := e.Prepare(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	return e.ExecutePrepared(ctx, p, nil)
}

// ExecuteQuery validates and runs a parsed query under ctx. It is a
// materializing wrapper over the streaming cursor pipeline: the cursor
// is drained to completion and the rows are put into the engine's
// canonical sorted order, so callers see exactly the pre-streaming
// behavior. When execution is aborted by cancellation the returned error
// wraps ctx.Err() and the returned Result still carries the execution
// statistics accumulated up to the abort (scanned events, pattern
// order), so callers can report how much work a timed-out query did.
func (e *Engine) ExecuteQuery(ctx context.Context, q ast.Query) (*Result, error) {
	start := time.Now()
	cur, err := e.ExecuteQueryCursor(ctx, q, CursorOptions{})
	if err != nil {
		return nil, err
	}
	return materializeCursor(cur, start)
}

// materializeCursor drains a cursor to completion and puts the rows
// into the engine's canonical sorted order. When execution is aborted
// the returned error wraps the cause and the Result still carries the
// statistics accumulated up to the abort.
func materializeCursor(cur *Cursor, start time.Time) (*Result, error) {
	res := &Result{Columns: cur.Columns()}
	for cur.Next() {
		res.Rows = append(res.Rows, cur.Row())
	}
	execErr := cur.Err()
	cur.Close()
	res.Stats = cur.Stats()
	res.Stats.Elapsed = time.Since(start)
	if execErr != nil {
		return res, execErr
	}
	res.SortRows()
	return res, nil
}

// ExplainEntry describes one scheduled pattern in an execution plan.
type ExplainEntry struct {
	Alias    string
	Estimate int
}

// Explain returns the scheduled pattern order and pruning-power
// estimates for a query without executing it. Parameterized templates
// are explained with their placeholders unconstrained.
func (e *Engine) Explain(src string) ([]ExplainEntry, error) {
	p, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	return e.ExplainPrepared(p)
}
