package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// buildSegmentedStore assembles a store with many small sealed segments
// plus an unsealed memtable tail, for scan-cache and snapshot tests.
func buildSegmentedStore(t testing.TB, sealEvery, events, tail int) *eventstore.Store {
	t.Helper()
	opts := eventstore.DefaultOptions()
	opts.SegmentEvents = sealEvery
	opts.BatchSize = 1 // commit per record so tail events land in the memtable
	s := eventstore.New(opts)
	rec := func(i int) eventstore.Record {
		return eventstore.Record{
			AgentID: uint32(1 + i%2),
			Subject: proc("worker.exe"),
			Op:      sysmon.OpWrite,
			ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: fmt.Sprintf(`C:\data\out%d.log`, i)},
			StartTS: ts(i % 180),
			Amount:  uint64(i),
		}
	}
	recs := make([]eventstore.Record, 0, events)
	for i := 0; i < events; i++ {
		recs = append(recs, rec(i))
	}
	s.AppendAll(recs)
	s.Flush() // everything so far sealed
	for i := 0; i < tail; i++ {
		s.Append(rec(events + i))
	}
	return s
}

const segQuery = `proc p["%worker.exe"] write file f as evt return p, f`

// TestScanCacheCorrectAndCounted: with the segment scan cache enabled,
// a repeated query returns identical rows, reports every sealed segment
// as a cache hit, and scans only the unsealed tail.
func TestScanCacheCorrectAndCounted(t *testing.T) {
	s := buildSegmentedStore(t, 16, 160, 0)
	segs := s.NumSegments()
	if segs < 5 {
		t.Fatalf("store sealed only %d segments, want several", segs)
	}
	e := NewWithConfig(s, Config{ScanCacheBytes: 8 << 20})

	cold, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.SegmentHits != 0 || cold.Stats.SegmentMisses == 0 {
		t.Errorf("cold run: hits=%d misses=%d, want 0 hits and >0 misses",
			cold.Stats.SegmentHits, cold.Stats.SegmentMisses)
	}
	if cold.Stats.ScannedEvents == 0 {
		t.Error("cold run scanned nothing")
	}

	warm, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Rows, cold.Rows) {
		t.Errorf("warm rows differ from cold rows")
	}
	if warm.Stats.SegmentMisses != 0 || warm.Stats.SegmentHits != cold.Stats.SegmentMisses {
		t.Errorf("warm run: hits=%d misses=%d, want %d hits and 0 misses",
			warm.Stats.SegmentHits, warm.Stats.SegmentMisses, cold.Stats.SegmentMisses)
	}
	if warm.Stats.ScannedEvents != 0 {
		t.Errorf("warm run scanned %d events, want 0 (all sealed segments cached)", warm.Stats.ScannedEvents)
	}
	cs := e.ScanCacheStats()
	if cs.Hits == 0 || cs.Entries == 0 {
		t.Errorf("scan cache stats = %+v, want hits and entries", cs)
	}
}

// TestScanCachePartialReuseAfterAppend: an append re-scans only the
// fresh data; every previously sealed segment is served from the cache
// and the result reflects the new events.
func TestScanCachePartialReuseAfterAppend(t *testing.T) {
	s := buildSegmentedStore(t, 16, 160, 0)
	e := NewWithConfig(s, Config{ScanCacheBytes: 8 << 20})

	cold, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	sealedBefore := cold.Stats.SegmentMisses

	// append a small delta and seal it
	s.AppendAll([]eventstore.Record{{
		AgentID: 1,
		Subject: proc("worker.exe"),
		Op:      sysmon.OpWrite,
		ObjType: sysmon.EntityFile,
		ObjFile: sysmon.File{Path: `C:\data\delta.log`},
		StartTS: ts(10),
	}})
	s.Flush()

	warm, err := e.Execute(context.Background(), segQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Rows) != len(cold.Rows)+1 {
		t.Fatalf("after append got %d rows, want %d", len(warm.Rows), len(cold.Rows)+1)
	}
	if warm.Stats.SegmentHits != sealedBefore {
		t.Errorf("after append: %d sealed-segment hits, want all %d pre-append segments reused",
			warm.Stats.SegmentHits, sealedBefore)
	}
	if warm.Stats.SegmentMisses == 0 {
		t.Error("the fresh segment should be a miss on its first scan")
	}
	if warm.Stats.ScannedEvents == 0 || warm.Stats.ScannedEvents >= cold.Stats.ScannedEvents {
		t.Errorf("after append scanned %d events, want >0 and far fewer than cold's %d",
			warm.Stats.ScannedEvents, cold.Stats.ScannedEvents)
	}
}

// TestScanCacheDisabledByDefault: a zero Config reports no segment
// reuse, preserving ablation measurement semantics.
func TestScanCacheDisabledByDefault(t *testing.T) {
	s := buildSegmentedStore(t, 16, 64, 0)
	e := New(s)
	for i := 0; i < 2; i++ {
		res, err := e.Execute(context.Background(), segQuery)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.SegmentHits != 0 || res.Stats.SegmentMisses != 0 {
			t.Fatalf("run %d counted segment reuse %+v without a cache", i, res.Stats)
		}
		if res.Stats.ScannedEvents == 0 {
			t.Fatalf("run %d scanned nothing", i)
		}
	}
	if cs := e.ScanCacheStats(); cs != (ScanCacheStats{}) {
		t.Errorf("disabled cache reports stats %+v", cs)
	}
}

// TestCursorSnapshotIsolation: a cursor opened before a concurrent
// append + seal iterates the frozen segment set — the row count matches
// the store as of cursor creation, regardless of mid-iteration writes.
func TestCursorSnapshotIsolation(t *testing.T) {
	s := buildSegmentedStore(t, 16, 96, 5)
	e := New(s)
	wantRows := s.Len()

	cur, err := e.ExecuteCursor(context.Background(), segQuery, CursorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	appended := make(chan struct{})
	go func() {
		defer close(appended)
		for i := 0; i < 10; i++ {
			s.AppendAll([]eventstore.Record{{
				AgentID: 1,
				Subject: proc("worker.exe"),
				Op:      sysmon.OpWrite,
				ObjType: sysmon.EntityFile,
				ObjFile: sysmon.File{Path: fmt.Sprintf(`C:\data\mid%d.log`, i)},
				StartTS: ts(20),
			}})
			s.Flush() // forces seals while the cursor iterates
		}
	}()

	rows := 0
	for cur.Next() {
		rows++
		if rows == 1 {
			<-appended // let all writes land mid-iteration
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != wantRows {
		t.Errorf("cursor yielded %d rows, want the snapshot's %d", rows, wantRows)
	}
	if s.Len() != wantRows+10 {
		t.Errorf("store has %d events, want %d", s.Len(), wantRows+10)
	}
}
