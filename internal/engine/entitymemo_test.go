package engine

import (
	"context"
	"fmt"
	"testing"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// TestEntityResolutionMemo: wildcard entity resolution is memoized
// across executions while the entity table is unchanged, and a commit
// that interns a new matching entity invalidates the memo — the next
// evaluation must see the newcomer.
func TestEntityResolutionMemo(t *testing.T) {
	s := buildSegmentedStore(t, 16, 64, 0)
	e := New(s)
	ctx := context.Background()
	const q = `proc p["%worker.exe"] write file f as evt return p, f`

	first, err := e.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 64 {
		t.Fatalf("first run rows = %d, want 64", len(first.Rows))
	}

	// appending events that reuse known entities leaves the process
	// table unchanged: the memo must serve the same (correct) set
	if err := s.AppendAll([]eventstore.Record{{
		AgentID: 1,
		Subject: proc("worker.exe"),
		Op:      sysmon.OpWrite,
		ObjType: sysmon.EntityFile,
		ObjFile: sysmon.File{Path: `C:\data\fresh.log`},
		StartTS: ts(170),
	}}); err != nil {
		t.Fatal(err)
	}
	second, err := e.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Rows) != 65 {
		t.Fatalf("after same-entity append rows = %d, want 65", len(second.Rows))
	}

	// a brand-new process matching the wildcard grows the process table:
	// the count-keyed memo entry is stale and must be re-resolved
	if err := s.AppendAll([]eventstore.Record{{
		AgentID: 1,
		Subject: sysmon.Process{PID: 9999, ExeName: "night-worker.exe", Path: `C:\bin\night-worker.exe`, User: "bob"},
		Op:      sysmon.OpWrite,
		ObjType: sysmon.EntityFile,
		ObjFile: sysmon.File{Path: `C:\data\night.log`},
		StartTS: ts(171),
	}}); err != nil {
		t.Fatal(err)
	}
	third, err := e.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Rows) != 66 {
		t.Fatalf("after new-entity append rows = %d, want 66 (memo served a stale entity set)", len(third.Rows))
	}
	found := false
	for _, row := range third.Rows {
		for _, cell := range row {
			if cell != "" && containsNight(cell) {
				found = true
			}
		}
	}
	if !found {
		t.Error("rows never mention the newly interned night-worker.exe")
	}

	// memo population stays bounded by distinct filters
	e.resolveMu.Lock()
	entries := len(e.resolved)
	e.resolveMu.Unlock()
	if entries == 0 || entries > 4 {
		t.Errorf("memo holds %d entries, want the query's single filter (and no unbounded growth)", entries)
	}
}

func containsNight(s string) bool {
	for i := 0; i+5 <= len(s); i++ {
		if s[i:i+5] == "night" {
			return true
		}
	}
	return false
}

// TestEntityResolutionMemoManyFilters: the memo clears rather than
// growing without bound under an adversarial stream of distinct
// filters.
func TestEntityResolutionMemoManyFilters(t *testing.T) {
	s := buildSegmentedStore(t, 16, 32, 0)
	e := New(s)
	ctx := context.Background()
	for i := 0; i < entityMatchCap+16; i++ {
		q := fmt.Sprintf(`proc p["%%worker-%d%%"] write file f as evt return p, f`, i)
		if _, err := e.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	e.resolveMu.Lock()
	entries := len(e.resolved)
	e.resolveMu.Unlock()
	if entries > entityMatchCap {
		t.Errorf("memo grew to %d entries past the %d cap", entries, entityMatchCap)
	}
}
