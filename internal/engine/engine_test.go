package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

var base = time.Date(2018, 5, 10, 9, 0, 0, 0, time.UTC)

func ts(min int) int64 { return base.Add(time.Duration(min) * time.Minute).UnixNano() }

func proc(name string) sysmon.Process {
	return sysmon.Process{PID: 100, ExeName: name, Path: `C:\bin\` + name, User: "alice"}
}

// buildAttackStore assembles the paper's Query-1 scenario (data
// exfiltration from a database server on agent 7) plus background noise
// on other agents.
func buildAttackStore(t *testing.T, opts eventstore.Options) *eventstore.Store {
	t.Helper()
	s := eventstore.New(opts)
	recs := []eventstore.Record{
		// attack trace on agent 7
		{AgentID: 7, Subject: proc("cmd.exe"), Op: sysmon.OpStart,
			ObjProc: proc("osql.exe"), StartTS: ts(1)},
		{AgentID: 7, Subject: proc("sqlservr.exe"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\data\backup1.dmp`}, StartTS: ts(2), Amount: 9000},
		{AgentID: 7, Subject: proc("sbblv.exe"), Op: sysmon.OpRead, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\data\backup1.dmp`}, StartTS: ts(3), Amount: 9000},
		{AgentID: 7, Subject: proc("sbblv.exe"), Op: sysmon.OpWrite, ObjType: sysmon.EntityNetconn,
			ObjConn: sysmon.Netconn{SrcIP: "10.0.0.7", SrcPort: 31000, DstIP: "203.0.113.129", DstPort: 443, Protocol: "tcp"},
			StartTS: ts(4), Amount: 9000},
		// decoy: same file read but BEFORE the dump was written
		{AgentID: 7, Subject: proc("backup.exe"), Op: sysmon.OpRead, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\data\backup1.dmp`}, StartTS: ts(0), Amount: 10},
		// noise on other agents
		{AgentID: 3, Subject: proc("cmd.exe"), Op: sysmon.OpStart,
			ObjProc: proc("notepad.exe"), StartTS: ts(1)},
		{AgentID: 3, Subject: proc("svchost.exe"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: `C:\Windows\log.txt`}, StartTS: ts(2), Amount: 64},
	}
	s.AppendAll(recs)
	s.Flush()
	return s
}

const query1 = `
(at "05/10/2018")
agentid = 7
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="%.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1
`

func TestMultieventQuery1(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	e := New(s)
	res, err := e.Execute(context.Background(), query1)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1:\n%s", len(res.Rows), res.Table())
	}
	want := []string{"cmd.exe", "osql.exe", "sqlservr.exe", `C:\data\backup1.dmp`, "sbblv.exe", "203.0.113.129"}
	for i, cell := range res.Rows[0] {
		if cell != want[i] {
			t.Errorf("column %d = %q, want %q", i, cell, want[i])
		}
	}
	if len(res.Columns) != 6 {
		t.Errorf("got %d columns, want 6 (%v)", len(res.Columns), res.Columns)
	}
}

func TestMultieventTemporalFilterExcludesDecoy(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	e := New(s)
	// without temporal constraints, both readers of backup1.dmp match
	res, err := e.Execute(context.Background(), `
agentid = 7
proc w["%sqlservr.exe"] write file f["%backup1.dmp"] as evt1
proc r read file f as evt2
return distinct r`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("unconstrained: got %d rows, want 2\n%s", len(res.Rows), res.Table())
	}
	// with evt1 before evt2 only sbblv.exe remains
	res, err = e.Execute(context.Background(), `
agentid = 7
proc w["%sqlservr.exe"] write file f["%backup1.dmp"] as evt1
proc r read file f as evt2
with evt1 before evt2
return distinct r`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "sbblv.exe" {
		t.Fatalf("constrained: got %v, want [[sbblv.exe]]", res.Rows)
	}
}

func TestSchedulingMatchesWithAndWithoutReordering(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	for _, cfg := range []Config{{}, {DisableReordering: true}, {DisableParallel: true}, {DisableReordering: true, DisableParallel: true}} {
		e := NewWithConfig(s, cfg)
		res, err := e.Execute(context.Background(), query1)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("cfg %+v: got %d rows, want 1", cfg, len(res.Rows))
		}
	}
}

func TestDependencyForwardCrossHost(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	conn := sysmon.Netconn{SrcIP: "10.0.0.1", SrcPort: 40000, DstIP: "10.0.0.2", DstPort: 80, Protocol: "tcp"}
	recs := []eventstore.Record{
		{AgentID: 1, Subject: proc("cp"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: "/var/www/info_stealer.sh"}, StartTS: ts(1)},
		{AgentID: 1, Subject: proc("apache2"), Op: sysmon.OpRead, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: "/var/www/info_stealer.sh"}, StartTS: ts(2)},
		{AgentID: 1, Subject: proc("apache2"), Op: sysmon.OpConnect, ObjType: sysmon.EntityNetconn,
			ObjConn: conn, StartTS: ts(3)},
		{AgentID: 2, Subject: proc("wget"), Op: sysmon.OpAccept, ObjType: sysmon.EntityNetconn,
			ObjConn: conn, StartTS: ts(4)},
		{AgentID: 2, Subject: proc("wget"), Op: sysmon.OpWrite, ObjType: sysmon.EntityFile,
			ObjFile: sysmon.File{Path: "/tmp/info_stealer.sh"}, StartTS: ts(5)},
	}
	s.AppendAll(recs)
	s.Flush()
	e := New(s)
	res, err := e.Execute(context.Background(), `
forward: proc p1["%cp%", agentid = 1] ->[write] file f1["%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid = 2]
->[write] file f2["%info_stealer%"]
return f1, p1, p2, p3, f2`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1:\n%s", len(res.Rows), res.Table())
	}
	row := res.Rows[0]
	want := []string{"/var/www/info_stealer.sh", "cp", "apache2", "wget", "/tmp/info_stealer.sh"}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("col %d = %q, want %q", i, row[i], want[i])
		}
	}
}

func TestAnomalyMovingAverage(t *testing.T) {
	s := eventstore.New(eventstore.DefaultOptions())
	conn := sysmon.Netconn{SrcIP: "10.0.0.7", SrcPort: 31000, DstIP: "203.0.113.129", DstPort: 443, Protocol: "tcp"}
	var recs []eventstore.Record
	// steady small transfers for 10 minutes, then a burst
	for m := 0; m < 10; m++ {
		recs = append(recs, eventstore.Record{
			AgentID: 7, Subject: proc("svchost.exe"), Op: sysmon.OpWrite,
			ObjType: sysmon.EntityNetconn, ObjConn: conn,
			StartTS: ts(m), Amount: 100,
		})
	}
	recs = append(recs, eventstore.Record{
		AgentID: 7, Subject: proc("sbblv.exe"), Op: sysmon.OpWrite,
		ObjType: sysmon.EntityNetconn, ObjConn: conn,
		StartTS: ts(11), Amount: 50000,
	})
	s.AppendAll(recs)
	s.Flush()
	e := New(s)
	res, err := e.Execute(context.Background(), `
(from "05/10/2018 09:00:00" to "05/10/2018 09:15:00")
agentid = 7
window = 1 min, step = 1 min
proc p write ip i[dstip="203.0.113.129"] as evt
return p, avg(evt.amount) as amt
group by p
having amt > 2 * (amt + amt[1] + amt[2]) / 3`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0] == "sbblv.exe" {
			found = true
		}
		if row[0] == "svchost.exe" {
			t.Errorf("steady-rate process svchost.exe flagged as anomalous: %v", row)
		}
	}
	if !found {
		t.Fatalf("burst process sbblv.exe not flagged:\n%s", res.Table())
	}
}

func TestExplainOrdersBySelectivity(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	e := New(s)
	entries, err := e.Explain(query1)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(entries))
	}
	// estimates must be non-decreasing only for connected greedy picks;
	// at minimum the first entry must be a minimal-estimate pattern
	for _, e2 := range entries[1:] {
		if entries[0].Estimate > e2.Estimate {
			t.Errorf("first scheduled pattern %q (est %d) is not minimal (%q est %d)",
				entries[0].Alias, entries[0].Estimate, e2.Alias, e2.Estimate)
		}
	}
}

func TestEmptyResultOnContradiction(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	e := New(s)
	res, err := e.Execute(context.Background(), `
agentid = 999
proc p1["%cmd.exe"] start proc p2 as evt1
return p1, p2`)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected no rows for absent agent, got %d", len(res.Rows))
	}
}

func TestSyntaxErrorsSurface(t *testing.T) {
	s := buildAttackStore(t, eventstore.DefaultOptions())
	e := New(s)
	for _, src := range []string{
		`proc p1 start proc p2`,                 // missing return
		`return p1`,                             // unknown variable
		`proc p1 frobnicate proc p2 return p1`,  // unknown op
		`proc p1 start file f1 return p1`,       // op/object mismatch
		`proc p1["x" start proc p2 return p1`,   // unbalanced bracket
		`proc p1 start proc p2 return p1.bogus`, // unknown attribute
		`window = 10 min, step = 20 min proc p write ip i as evt return count(evt)`, // step > window
	} {
		if _, err := e.Execute(context.Background(), src); err == nil {
			t.Errorf("query %q: expected error, got none", strings.TrimSpace(src))
		}
	}
}
