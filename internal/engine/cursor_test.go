package engine

import (
	"context"
	"errors"
	"testing"
)

// drain pulls every row from a cursor and returns them with the final
// error.
func drain(t *testing.T, c *Cursor) ([][]string, error) {
	t.Helper()
	defer c.Close()
	var rows [][]string
	for c.Next() {
		rows = append(rows, c.Row())
	}
	return rows, c.Err()
}

// TestCursorMatchesExecute: a fully drained cursor, once sorted, must
// produce exactly the rows, columns, and scan statistics of the
// materializing Execute path, for every query family and engine
// configuration.
func TestCursorMatchesExecute(t *testing.T) {
	store := buildWideStore(t, 20000)
	queries := []string{
		`proc p write file f as evt return p, f`,
		`proc p write file f as evt return distinct p`,
		`proc p1 write file f as e1
proc p2 write file f as e2
with e1 before e2
return distinct f`,
		`window = 1 min, step = 1 min
proc p write file f as evt
return p, count(evt) as c
group by p
having c > 0`,
	}
	for _, cfg := range []Config{{}, {DisableParallel: true}} {
		eng := NewWithConfig(store, cfg)
		for qi, src := range queries {
			want, err := eng.Execute(context.Background(), src)
			if err != nil {
				t.Fatalf("cfg %+v query %d: Execute: %v", cfg, qi, err)
			}
			cur, err := eng.ExecuteCursor(context.Background(), src, CursorOptions{})
			if err != nil {
				t.Fatalf("cfg %+v query %d: ExecuteCursor: %v", cfg, qi, err)
			}
			rows, err := drain(t, cur)
			if err != nil {
				t.Fatalf("cfg %+v query %d: cursor: %v", cfg, qi, err)
			}
			got := &Result{Columns: cur.Columns(), Rows: rows}
			got.SortRows()
			if len(got.Columns) != len(want.Columns) {
				t.Fatalf("cfg %+v query %d: columns %v != %v", cfg, qi, got.Columns, want.Columns)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("cfg %+v query %d: %d rows != %d rows", cfg, qi, len(got.Rows), len(want.Rows))
			}
			for i := range got.Rows {
				for j := range got.Rows[i] {
					if got.Rows[i][j] != want.Rows[i][j] {
						t.Fatalf("cfg %+v query %d: row %d differs: %v != %v", cfg, qi, i, got.Rows[i], want.Rows[i])
					}
				}
			}
			if st := cur.Stats(); st.ScannedEvents != want.Stats.ScannedEvents {
				t.Errorf("cfg %+v query %d: cursor scanned %d events, Execute scanned %d", cfg, qi, st.ScannedEvents, want.Stats.ScannedEvents)
			}
		}
	}
}

// TestCursorLimitPushdown: a LIMIT-k cursor must stop the final pattern
// scan early — strictly fewer events visited than the unlimited drain —
// and still return exactly k rows.
func TestCursorLimitPushdown(t *testing.T) {
	store := buildWideStore(t, 60000)
	eng := New(store)

	full, err := eng.Execute(context.Background(), wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) <= 50 {
		t.Fatalf("want a result larger than the limit, got %d rows", len(full.Rows))
	}

	cur, err := eng.ExecuteCursor(context.Background(), wideQuery, CursorOptions{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drain(t, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("limit 50 yielded %d rows", len(rows))
	}
	st := cur.Stats()
	if st.ScannedEvents >= full.Stats.ScannedEvents {
		t.Errorf("limit 50 scanned %d events, full drain scanned %d — want strictly fewer", st.ScannedEvents, full.Stats.ScannedEvents)
	}
	if st.ScannedEvents >= int64(store.Len()) {
		t.Errorf("limit 50 visited the whole store (%d events)", st.ScannedEvents)
	}
}

// TestCursorLimitWithDistinct: the limit counts emitted (post-dedup)
// rows, not bindings.
func TestCursorLimitWithDistinct(t *testing.T) {
	store := buildWideStore(t, 5000)
	eng := New(store)
	// every event shares one subject process, so distinct p has 1 row
	cur, err := eng.ExecuteCursor(context.Background(), `proc p write file f as evt return distinct p`, CursorOptions{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drain(t, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("distinct p yielded %d rows, want 1", len(rows))
	}
}

// TestCursorCloseAbortsScan: closing a cursor mid-stream must abort the
// remaining scan work — the final statistics show only part of the
// store visited — and must not surface an error.
func TestCursorCloseAbortsScan(t *testing.T) {
	store := buildWideStore(t, 60000)
	for _, cfg := range []Config{{}, {DisableParallel: true}} {
		eng := NewWithConfig(store, cfg)
		cur, err := eng.ExecuteCursor(context.Background(), wideQuery, CursorOptions{})
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		for i := 0; i < 5; i++ {
			if !cur.Next() {
				t.Fatalf("cfg %+v: stream ended after %d rows", cfg, i)
			}
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			t.Errorf("cfg %+v: deliberate close surfaced error %v", cfg, err)
		}
		st := cur.Stats()
		if st.ScannedEvents == 0 {
			t.Errorf("cfg %+v: no events scanned before close", cfg)
		}
		if st.ScannedEvents >= int64(store.Len()) {
			t.Errorf("cfg %+v: close did not abort the scan: visited %d of %d events", cfg, st.ScannedEvents, store.Len())
		}
	}
}

// TestCursorParentCancellation: cancelling the caller's context
// mid-stream surfaces a context error through Err, unlike a deliberate
// Close.
func TestCursorParentCancellation(t *testing.T) {
	store := buildWideStore(t, 60000)
	eng := New(store)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cur, err := eng.ExecuteCursor(ctx, wideQuery, CursorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 3; i++ {
		if !cur.Next() {
			t.Fatalf("stream ended after %d rows", i)
		}
	}
	cancel()
	for cur.Next() { //nolint:revive // drain whatever was in flight
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCursorCompileErrors: parse/semantic errors are returned
// immediately, not through the stream.
func TestCursorCompileErrors(t *testing.T) {
	eng := New(buildWideStore(t, 10))
	if _, err := eng.ExecuteCursor(context.Background(), "not aiql", CursorOptions{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := eng.ExecuteCursor(context.Background(), "proc p write file f as evt return q", CursorOptions{}); err == nil {
		t.Error("semantic error not surfaced")
	}
}
