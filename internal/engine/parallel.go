package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
)

// This file is the parallel scan executor: each (pattern filter ×
// scan unit) becomes an independent task, scheduled onto the engine's
// bounded worker pool, with results handed downstream strictly in the
// snapshot's deterministic unit order. Because consumption order is
// identical to the sequential walk, everything built on emission order
// — cursor semantics, LIMIT pushdown, pagination tokens, distinct
// dedup — behaves byte-for-byte the same whether zero or many helpers
// are running.
//
// The merging goroutine always participates: it claims and scans any
// unit a helper has not taken before waiting on it, so the executor
// makes progress (degrading to a pure sequential scan) even when the
// pool is saturated or has no slots at all.

// unitResult is one scan task's outcome.
type unitResult struct {
	batch    []sysmon.Event
	visited  int64
	complete bool
	hit      bool
}

// forEachUnitOrdered scans the units for one pattern filter with
// pooled helper workers and hands each unit's filtered batch to
// consume in deterministic unit order. consume returning false stops
// the merge (helpers are told to abort and are awaited before
// returning, so execution statistics are final). Sealed-unit batches
// are served from the scan cache when present and fill it when
// scanned to completion; hit/miss accounting happens at consume time
// only, so the counters match the sequential walk exactly. A non-zero
// limitHint shrinks the helper lookahead window, bounding the work
// wasted past a satisfied limit.
func (e *Engine) forEachUnitOrdered(ctx context.Context, units []eventstore.ScanUnit, filter *eventstore.EventFilter, preds []evtPred, stats *ExecStats, limitHint int, consume func(batch []sysmon.Event) bool) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: query aborted: %w", err)
	}
	if len(units) == 0 {
		return nil
	}
	cache := e.scache.Load()
	var fp scanFP
	if cache != nil {
		fp = scanFingerprint(filter, preds)
	}
	cached := cache.peekAll(fp, units)
	cf := filter.Compile()
	keep := func(ev *sysmon.Event) bool { return evtPredsOK(preds, ev) }
	if len(preds) == 0 {
		keep = nil
	}

	results := make([]unitResult, len(units))
	scanUnit := func(i int) {
		r := &results[i]
		if cached != nil && cached[i] != nil {
			r.batch, r.hit, r.complete = cached[i], true, true
			return
		}
		r.batch, r.visited, r.complete = units[i].CollectBatch(ctx, cf, keep)
		if r.complete && cache != nil && units[i].Sealed() {
			cache.put(fp, units[i].SegmentID(), r.batch)
		}
	}

	var retErr error
	// consumeUnit does the consume-time accounting and hands the batch
	// downstream; false stops the merge.
	consumeUnit := func(i int) bool {
		r := &results[i]
		stats.ScannedEvents += r.visited
		if cache != nil && units[i].Sealed() {
			if r.hit {
				stats.SegmentHits++
			} else {
				stats.SegmentMisses++
			}
			cache.note(r.hit)
		}
		if !consume(r.batch) {
			return false
		}
		if !r.complete {
			retErr = fmt.Errorf("engine: query aborted: %w", ctx.Err())
			return false
		}
		return true
	}

	pool := e.pool.Load()
	maxHelpers := pool.Helpers()
	if maxHelpers > len(units)-1 {
		maxHelpers = len(units) - 1
	}
	if maxHelpers <= 0 {
		// No helpers available: plain sequential walk, zero
		// coordination overhead. Without a cache nothing retains a
		// batch past its consume call, so one scratch buffer serves
		// every unit instead of allocating per unit.
		var scratch []sysmon.Event
		for i := range units {
			if cache == nil {
				r := &results[i]
				r.batch, r.visited, r.complete = units[i].CollectBatchInto(ctx, cf, keep, scratch[:0])
				scratch = r.batch[:0]
			} else {
				scanUnit(i)
			}
			if !consumeUnit(i) {
				return retErr
			}
		}
		return nil
	}

	// Helpers claim units ahead of the merge point within a bounded
	// lookahead window, so a stalled or limit-satisfied consumer never
	// causes the whole snapshot to be prefetched into memory.
	window := 4 * maxHelpers
	switch {
	case window < 8:
		window = 8
	case window > 64:
		window = 64
	}
	if limitHint > 0 && window > 8 {
		window = 8
	}

	done := make([]chan struct{}, len(units))
	for i := range done {
		done[i] = make(chan struct{})
	}
	claims := make([]atomic.Bool, len(units))
	var consumed atomic.Int64

	// Early termination must reach in-flight tasks: collapsing the
	// window stops new claims, and triggering the cursor's halt (when
	// running under one) makes running block scans observe ctx.Err at
	// their next check.
	abort := func() {}
	if hc, ok := ctx.(*haltCtx); ok {
		abort = hc.h.trigger
	}

	helper := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			base := int(consumed.Load())
			hi := base + window
			if hi > len(units) {
				hi = len(units)
			}
			i := -1
			for k := base; k < hi; k++ {
				if !claims[k].Load() && claims[k].CompareAndSwap(false, true) {
					i = k
					break
				}
			}
			if i < 0 {
				return // window fully claimed; the consumer respawns as it advances
			}
			scanUnit(i)
			close(done[i])
		}
	}

	var (
		wg   sync.WaitGroup
		live atomic.Int64
	)
	spawn := func() {
		for int(live.Load()) < maxHelpers {
			live.Add(1)
			wg.Add(1)
			if !pool.TryGo(func() { defer wg.Done(); defer live.Add(-1); helper() }) {
				live.Add(-1)
				wg.Done()
				return
			}
		}
	}
	stop := func() {
		consumed.Store(int64(len(units)))
		abort()
		wg.Wait()
	}

	spawn()
	for i := range units {
		if claims[i].CompareAndSwap(false, true) {
			scanUnit(i) // unclaimed: the consumer scans inline
		} else {
			waitStart := time.Now()
			<-done[i]
			stats.PoolWait += time.Since(waitStart)
		}
		if !consumeUnit(i) {
			stop()
			return retErr
		}
		consumed.Store(int64(i + 1))
		if i+1 < len(units) && int(live.Load()) < maxHelpers {
			spawn()
		}
	}
	wg.Wait()
	return nil
}
