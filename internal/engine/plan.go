package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/like"
	"github.com/aiql/aiql/internal/sysmon"
)

// patternPlan is the executable form of one event pattern: the storage
// filter it scans with, the candidate entity sets implied by its attribute
// filters, per-event predicates, and the optimizer's match estimate.
type patternPlan struct {
	idx      int // position in the query's syntactic order
	alias    string
	subjVar  string
	objVar   string
	objType  sysmon.EntityType
	filter   eventstore.EventFilter
	subjSet  *eventstore.IDSet // nil = unconstrained
	objSet   *eventstore.IDSet
	evtPreds []evtPred
	estimate int
}

// evtPred is a compiled event-attribute predicate (agentid, amount, ...).
type evtPred struct {
	attr string
	op   ast.CmpOp
	num  float64
	str  string
	strP *like.Pattern
}

func (p *evtPred) eval(ev *sysmon.Event) bool {
	var numVal float64
	var strVal string
	isNum := true
	switch p.attr {
	case "id":
		numVal = float64(ev.ID)
	case "agentid", "agent_id":
		numVal = float64(ev.AgentID)
	case "amount":
		numVal = float64(ev.Amount)
	case "seq":
		numVal = float64(ev.Seq)
	case "starttime", "start_time":
		numVal = float64(ev.StartTS)
	case "endtime", "end_time":
		numVal = float64(ev.EndTS)
	case "optype", "op":
		isNum = false
		strVal = ev.Op.String()
	default:
		return false
	}
	if isNum {
		switch p.op {
		case ast.CmpEQ:
			return numVal == p.num
		case ast.CmpNEQ:
			return numVal != p.num
		case ast.CmpLT:
			return numVal < p.num
		case ast.CmpLE:
			return numVal <= p.num
		case ast.CmpGT:
			return numVal > p.num
		case ast.CmpGE:
			return numVal >= p.num
		default:
			return false
		}
	}
	switch p.op {
	case ast.CmpEQ:
		return strings.EqualFold(strVal, p.str)
	case ast.CmpNEQ:
		return !strings.EqualFold(strVal, p.str)
	case ast.CmpLike:
		return p.strP.Match(strVal)
	default:
		return false
	}
}

// queryPlan is the scheduled execution plan for a multievent query.
type queryPlan struct {
	patterns []*patternPlan // in scheduled order
	rels     []ast.TemporalRel
	window   ast.TimeWindow
}

// compileEvtPred turns an AST event filter into a predicate.
func compileEvtPred(f ast.Filter) evtPred {
	p := evtPred{attr: f.Attr, op: f.Op}
	if f.Val.IsNum {
		p.num = f.Val.Num
	} else {
		p.str = f.Val.Str
		p.strP = like.Compile(f.Val.Str)
		// numeric attrs given as strings still compare numerically
		if n, err := strconv.ParseFloat(f.Val.Str, 64); err == nil {
			p.num = n
		}
	}
	return p
}

// entityCandidates evaluates an entity reference's attribute filters
// against the dictionary, returning the candidate ID set (nil when the
// reference is unconstrained).
func (e *Engine) entityCandidates(ref *ast.EntityRef) (*eventstore.IDSet, error) {
	if len(ref.Filters) == 0 {
		return nil, nil
	}
	dict := e.store.Dict()
	var set *eventstore.IDSet
	for i := range ref.Filters {
		f := &ref.Filters[i]
		if f.Val.Param != "" {
			return nil, fmt.Errorf("engine: unbound parameter $%s; prepare the query and bind it before executing", f.Val.Param)
		}
		attr, ok := sysmon.CanonicalAttr(ref.Type, f.Attr)
		if !ok {
			return nil, fmt.Errorf("engine: entity %q has no attribute %q", ref.Name, f.Attr)
		}
		cur, err := e.cachedEntityMatch(dict, ref, attr, f)
		if err != nil {
			return nil, err
		}
		set = set.Intersect(cur)
	}
	return set, nil
}

// entityMatchKey identifies one attribute filter's resolution; together
// with the dictionary identity and per-type entity count it fully
// determines the resolved ID set.
type entityMatchKey struct {
	typ   sysmon.EntityType
	attr  string
	op    ast.CmpOp
	str   string
	num   float64
	isNum bool
}

// entityMatchEntry is one memoized resolution. The entry is valid while
// the same dictionary still holds exactly n entities of the filter's
// type: entity tables are append-only with immutable entries, so an
// unchanged count guarantees an unchanged match set. The set is shared
// and must be treated as read-only (Intersect copies).
type entityMatchEntry struct {
	dict *eventstore.Dictionary
	n    int
	set  *eventstore.IDSet
}

// entityMatchCap bounds the resolution memo; the population is one
// entry per distinct attribute filter across live queries, so the cap
// exists only to survive adversarial query streams.
const entityMatchCap = 512

// cachedEntityMatch resolves one attribute filter against the entity
// dictionary, memoizing by filter + dictionary + entity count. Standing
// queries re-evaluate after every ingest commit; when a commit touched
// only events (or entities of other types), the wildcard re-scan of the
// dictionary — linear in interned entities — is skipped entirely, which
// keeps post-ingest re-evaluation proportional to the fresh delta.
func (e *Engine) cachedEntityMatch(dict *eventstore.Dictionary, ref *ast.EntityRef, attr string, f *ast.Filter) (*eventstore.IDSet, error) {
	key := entityMatchKey{typ: ref.Type, attr: attr, op: f.Op, str: f.Val.Str, num: f.Val.Num, isNum: f.Val.IsNum}
	// the count is read before resolving: interns racing the resolution
	// can only make the resolved set larger than the recorded count
	// admits, which future lookups see as a stale count — a miss, never
	// a wrong hit
	n := dict.Count(ref.Type)
	e.resolveMu.Lock()
	if ent, ok := e.resolved[key]; ok && ent.dict == dict && ent.n == n {
		e.resolveMu.Unlock()
		return ent.set, nil
	}
	e.resolveMu.Unlock()
	cur, err := matchEntityFilter(dict, ref, attr, f)
	if err != nil {
		return nil, err
	}
	e.resolveMu.Lock()
	if e.resolved == nil {
		e.resolved = make(map[entityMatchKey]entityMatchEntry)
	} else if len(e.resolved) >= entityMatchCap {
		e.resolved = make(map[entityMatchKey]entityMatchEntry)
	}
	e.resolved[key] = entityMatchEntry{dict: dict, n: n, set: cur}
	e.resolveMu.Unlock()
	return cur, nil
}

// matchEntityFilter is the uncached resolution of one attribute filter.
func matchEntityFilter(dict *eventstore.Dictionary, ref *ast.EntityRef, attr string, f *ast.Filter) (*eventstore.IDSet, error) {
	switch f.Op {
	case ast.CmpLike:
		return dict.MatchEntities(ref.Type, attr, like.Compile(f.Val.Str)), nil
	case ast.CmpEQ:
		if f.Val.IsNum {
			return matchNumeric(dict, ref.Type, attr, f.Op, f.Val.Num), nil
		}
		return dict.MatchEntities(ref.Type, attr, like.Compile(f.Val.Str)), nil
	case ast.CmpNEQ:
		if f.Val.IsNum {
			return matchNumeric(dict, ref.Type, attr, f.Op, f.Val.Num), nil
		}
		pat := like.Compile(f.Val.Str)
		return matchPredicate(dict, ref.Type, attr, func(v string) bool { return !pat.Match(v) }), nil
	default: // numeric comparisons
		num := f.Val.Num
		if !f.Val.IsNum {
			n, err := strconv.ParseFloat(f.Val.Str, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: attribute %s.%s compared with non-numeric value %q", ref.Name, attr, f.Val.Str)
			}
			num = n
		}
		return matchNumeric(dict, ref.Type, attr, f.Op, num), nil
	}
}

func matchPredicate(dict *eventstore.Dictionary, t sysmon.EntityType, attr string, pred func(string) bool) *eventstore.IDSet {
	out := eventstore.NewIDSet()
	n := dict.Count(t)
	for i := 1; i <= n; i++ {
		if pred(dict.Attr(t, sysmon.EntityID(i), attr)) {
			out.Add(sysmon.EntityID(i))
		}
	}
	return out
}

func matchNumeric(dict *eventstore.Dictionary, t sysmon.EntityType, attr string, op ast.CmpOp, num float64) *eventstore.IDSet {
	return matchPredicate(dict, t, attr, func(v string) bool {
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return false
		}
		switch op {
		case ast.CmpEQ:
			return x == num
		case ast.CmpNEQ:
			return x != num
		case ast.CmpLT:
			return x < num
		case ast.CmpLE:
			return x <= num
		case ast.CmpGT:
			return x > num
		case ast.CmpGE:
			return x >= num
		}
		return false
	})
}

// buildPlan compiles every pattern of a multievent query into a pattern
// plan and schedules them against one store snapshot. Scheduling follows
// the paper's two insights: patterns with higher pruning power (lower
// match estimates) run first, and each scan is confined to the
// spatial/temporal partitions implied by the global constraints.
// Estimates are only computed when something consumes them — the
// scheduler (two or more patterns with reordering on) or an explain —
// so single-pattern queries skip the per-unit estimation walk entirely.
func (e *Engine) buildPlan(snap *eventstore.Snapshot, q *ast.MultieventQuery) (*queryPlan, error) {
	needEstimates := len(q.Patterns) > 1 && !e.cfg.DisableReordering
	return e.buildPlanEstimates(snap, q, needEstimates)
}

func (e *Engine) buildPlanEstimates(snap *eventstore.Snapshot, q *ast.MultieventQuery, needEstimates bool) (*queryPlan, error) {
	plan, err := e.compilePatterns(snap, q, needEstimates)
	if err != nil {
		return nil, err
	}
	e.schedule(plan)
	return plan, nil
}

// buildPlanFixed compiles the patterns and applies a previously computed
// scheduling order (pattern indices in execution sequence) instead of
// re-scheduling — the execute-many half of a prepared statement: no
// pruning-power estimates are computed at all.
func (e *Engine) buildPlanFixed(snap *eventstore.Snapshot, q *ast.MultieventQuery, order []int) (*queryPlan, error) {
	plan, err := e.compilePatterns(snap, q, false)
	if err != nil {
		return nil, err
	}
	orderPlan(plan, order)
	return plan, nil
}

// orderPlan reorders the pattern plans to the given sequence of original
// pattern indices. A mismatched order (defensive; cannot happen for a
// plan compiled from the template the order came from) leaves the
// syntactic order in place.
func orderPlan(plan *queryPlan, order []int) {
	if len(order) != len(plan.patterns) {
		return
	}
	byIdx := make(map[int]*patternPlan, len(plan.patterns))
	for _, pp := range plan.patterns {
		byIdx[pp.idx] = pp
	}
	ordered := make([]*patternPlan, 0, len(order))
	for _, idx := range order {
		pp, ok := byIdx[idx]
		if !ok {
			return
		}
		ordered = append(ordered, pp)
		delete(byIdx, idx)
	}
	plan.patterns = ordered
}

func (e *Engine) compilePatterns(snap *eventstore.Snapshot, q *ast.MultieventQuery, needEstimates bool) (*queryPlan, error) {
	plan := &queryPlan{}
	if q.Head_.Window != nil {
		if q.Head_.Window.HasParams() {
			return nil, fmt.Errorf("engine: time window carries unbound parameters; prepare the query and bind them before executing")
		}
		plan.window = *q.Head_.Window
	}
	globalAgents, globalPreds, err := splitGlobals(q.Head_.Globals)
	if err != nil {
		return nil, err
	}
	// index temporal relations; event-attribute with-conditions fold into
	// their pattern's predicate list
	perEventConds := map[string][]ast.Filter{}
	for _, w := range q.With {
		switch c := w.(type) {
		case ast.TemporalRel:
			plan.rels = append(plan.rels, c)
		case ast.EventCond:
			perEventConds[c.Event] = append(perEventConds[c.Event], ast.Filter{
				Attr: c.Attr, Op: c.Op, Val: c.Val, Pos: c.Pos,
			})
		}
	}
	for i := range q.Patterns {
		pat := &q.Patterns[i]
		pp := &patternPlan{
			idx:     i,
			alias:   pat.Alias,
			subjVar: pat.Subject.Name,
			objVar:  pat.Object.Name,
			objType: pat.Object.Type,
		}
		pp.filter = eventstore.EventFilter{
			From:    plan.window.From,
			To:      plan.window.To,
			ObjType: pat.Object.Type,
			Agents:  append([]uint32{}, globalAgents...),
		}
		for _, op := range pat.Ops {
			o, ok := sysmon.ParseOperation(op)
			if !ok {
				return nil, fmt.Errorf("engine: unknown operation %q", op)
			}
			pp.filter.Ops = append(pp.filter.Ops, o)
		}
		pp.subjSet, err = e.entityCandidates(&pat.Subject)
		if err != nil {
			return nil, err
		}
		pp.objSet, err = e.entityCandidates(&pat.Object)
		if err != nil {
			return nil, err
		}
		pp.filter.Subjects = pp.subjSet
		pp.filter.Objects = pp.objSet
		pp.evtPreds = append(pp.evtPreds, globalPreds...)
		evtFilters := append(append([]ast.Filter{}, pat.EvtFilters...), perEventConds[pat.Alias]...)
		for _, f := range evtFilters {
			if f.Val.Param != "" {
				return nil, fmt.Errorf("engine: unbound parameter $%s; prepare the query and bind it before executing", f.Val.Param)
			}
			// agent equality narrows the spatial scope directly
			if (f.Attr == "agentid" || f.Attr == "agent_id") && f.Op == ast.CmpEQ {
				if a, ok := filterAgent(f); ok {
					pp.filter.Agents = append(pp.filter.Agents, a)
					continue
				}
			}
			pp.evtPreds = append(pp.evtPreds, compileEvtPred(f))
		}
		if needEstimates {
			pp.estimate = snap.EstimateMatches(&pp.filter)
		}
		plan.patterns = append(plan.patterns, pp)
	}
	e.schedule(plan)
	return plan, nil
}

// splitGlobals separates global constraints into an agent list (spatial
// pruning) and residual event predicates.
func splitGlobals(globals []ast.Filter) ([]uint32, []evtPred, error) {
	var agents []uint32
	var preds []evtPred
	for _, f := range globals {
		if f.Val.Param != "" {
			return nil, nil, fmt.Errorf("engine: unbound parameter $%s; prepare the query and bind it before executing", f.Val.Param)
		}
		if (f.Attr == "agentid" || f.Attr == "agent_id") && f.Op == ast.CmpEQ {
			if a, ok := filterAgent(f); ok {
				agents = append(agents, a)
				continue
			}
		}
		preds = append(preds, compileEvtPred(f))
	}
	return agents, preds, nil
}

func filterAgent(f ast.Filter) (uint32, bool) {
	if f.Val.IsNum {
		if f.Val.Num >= 0 && f.Val.Num == float64(uint32(f.Val.Num)) {
			return uint32(f.Val.Num), true
		}
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(f.Val.Str, "agent-"), 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

// schedule orders the pattern plans. The optimized strategy runs the most
// selective pattern first and then greedily picks, among patterns sharing
// an entity variable with what has already run (to keep joins connected),
// the one with the lowest estimate. Reordering can be disabled for the
// ablation experiment, leaving syntactic order.
func (e *Engine) schedule(plan *queryPlan) {
	if e.cfg.DisableReordering || len(plan.patterns) <= 1 {
		return
	}
	remaining := append([]*patternPlan{}, plan.patterns...)
	sort.SliceStable(remaining, func(i, j int) bool { return remaining[i].estimate < remaining[j].estimate })

	bound := map[string]bool{}
	var ordered []*patternPlan
	pick := func(k int) {
		p := remaining[k]
		remaining = append(remaining[:k], remaining[k+1:]...)
		ordered = append(ordered, p)
		bound[p.subjVar] = true
		bound[p.objVar] = true
	}
	pick(0)
	for len(remaining) > 0 {
		chosen := -1
		for k, p := range remaining {
			if bound[p.subjVar] || bound[p.objVar] {
				chosen = k
				break
			}
		}
		if chosen < 0 {
			chosen = 0 // disconnected component: fall back to global minimum
		}
		pick(chosen)
	}
	plan.patterns = ordered
}
