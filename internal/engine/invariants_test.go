package engine

import (
	"context"
	"reflect"
	"testing"

	"github.com/aiql/aiql/internal/datagen"
	"github.com/aiql/aiql/internal/eventstore"
)

// buildScenarioStore generates a small demo-APT dataset once for the
// invariance tests.
func buildScenarioStore(t *testing.T) *eventstore.Store {
	t.Helper()
	s := eventstore.New(eventstore.DefaultOptions())
	datagen.GenerateInto(s, datagen.Config{
		Seed: 21, Hosts: 8, Events: 8000,
		Scenarios: []datagen.Scenario{datagen.ScenarioDemoAPT},
	})
	return s
}

var invarianceQueries = []string{
	// multievent with joins and order
	`(at "05/10/2018")
agentid = 2
proc p1["%cmd.exe"] start proc p2 as e1
proc p3 write file f["%backup1.dmp"] as e2
proc p4 read file f as e3
with e1 before e2, e2 before e3
return distinct p1, p2, p3, p4, f`,
	// dependency across hosts
	`(at "05/10/2018")
forward: proc p1["%cp%", agentid = 1] ->[write] file f1["%info_stealer%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid = 5]
return f1, p1, p2, p3`,
	// anomaly
	`(from "05/10/2018 13:00:00" to "05/10/2018 14:00:00")
agentid = 2
window = 2 min, step = 1 min
proc p write ip i as evt
return p, max(evt.amount) as peak
group by p
having peak > 1000000`,
}

// TestResultInvariantUnderScheduling: every engine configuration must
// produce the identical (sorted) result set — the optimizer may only
// change speed, never answers.
func TestResultInvariantUnderScheduling(t *testing.T) {
	store := buildScenarioStore(t)
	configs := []Config{
		{},
		{DisableReordering: true},
		{DisableParallel: true},
		{DisableReordering: true, DisableParallel: true},
	}
	for qi, src := range invarianceQueries {
		var want [][]string
		for ci, cfg := range configs {
			res, err := NewWithConfig(store, cfg).Execute(context.Background(), src)
			if err != nil {
				t.Fatalf("query %d cfg %+v: %v", qi, cfg, err)
			}
			if ci == 0 {
				want = res.Rows
				if len(want) == 0 {
					t.Fatalf("query %d returned no rows; invariance test is vacuous", qi)
				}
				continue
			}
			if !reflect.DeepEqual(res.Rows, want) {
				t.Errorf("query %d: config %+v disagrees\nwant %v\ngot  %v", qi, cfg, want, res.Rows)
			}
		}
	}
}

// TestResultInvariantUnderStorageOptions: storage optimizations must not
// change answers either.
func TestResultInvariantUnderStorageOptions(t *testing.T) {
	recs := datagen.Generate(datagen.Config{
		Seed: 21, Hosts: 8, Events: 8000,
		Scenarios: []datagen.Scenario{datagen.ScenarioDemoAPT},
	})
	// every variant keeps Dedup on: entity interning provides the
	// identity that shared-variable joins match on (see Options.Dedup)
	noIdx := eventstore.DefaultOptions()
	noIdx.Indexes = false
	noPart := eventstore.DefaultOptions()
	noPart.Partitioning = false
	noBatch := eventstore.DefaultOptions()
	noBatch.BatchCommit = false
	variants := []eventstore.Options{eventstore.DefaultOptions(), noIdx, noPart, noBatch}

	for qi, src := range invarianceQueries {
		var want [][]string
		for vi, opts := range variants {
			s := eventstore.New(opts)
			s.AppendAll(recs)
			s.Flush()
			res, err := New(s).Execute(context.Background(), src)
			if err != nil {
				t.Fatalf("query %d variant %d: %v", qi, vi, err)
			}
			if vi == 0 {
				want = res.Rows
				continue
			}
			if !reflect.DeepEqual(res.Rows, want) {
				t.Errorf("query %d: storage variant %d disagrees\nwant %v\ngot  %v", qi, vi, want, res.Rows)
			}
		}
	}
}

// TestDependencyDirectionSymmetry: a forward chain and its reversed
// backward chain describe the same paths.
func TestDependencyDirectionSymmetry(t *testing.T) {
	store := buildScenarioStore(t)
	eng := New(store)
	fwd, err := eng.Execute(context.Background(), `(at "05/10/2018")
forward: proc p1["%cp%", agentid = 1] ->[write] file f1["%info_stealer%"] <-[read] proc p2["%apache%"]
return distinct p1, f1, p2`)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := eng.Execute(context.Background(), `(at "05/10/2018")
backward: proc p2["%apache%", agentid = 1] ->[read] file f1["%info_stealer%"] <-[write] proc p1["%cp%"]
return distinct p1, f1, p2`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fwd.Rows, bwd.Rows) {
		t.Errorf("forward/backward mismatch:\nfwd %v\nbwd %v", fwd.Rows, bwd.Rows)
	}
	if len(fwd.Rows) == 0 {
		t.Error("symmetry test found no paths; vacuous")
	}
}

// TestWithinBoundPrunes: a tight `within` eliminates matches that a loose
// one admits.
func TestWithinBoundPrunes(t *testing.T) {
	store := buildScenarioStore(t)
	eng := New(store)
	loose, err := eng.Execute(context.Background(), `(at "05/10/2018")
agentid = 2
proc p3 write file f["%backup1.dmp"] as e1
proc p4["%sbblv%"] read file f as e2
with e1 before e2 within 12 hour
return distinct p4`)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := eng.Execute(context.Background(), `(at "05/10/2018")
agentid = 2
proc p3 write file f["%backup1.dmp"] as e1
proc p4["%sbblv%"] read file f as e2
with e1 before e2 within 1 sec
return distinct p4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Rows) == 0 {
		t.Fatal("loose bound found nothing")
	}
	if len(tight.Rows) >= len(loose.Rows) {
		t.Errorf("tight within (%d rows) should prune below loose (%d rows)",
			len(tight.Rows), len(loose.Rows))
	}
}

// TestDistinctCollapsesDuplicates: without distinct, repeated beacon
// events multiply rows; with distinct they collapse.
func TestDistinctCollapsesDuplicates(t *testing.T) {
	store := buildScenarioStore(t)
	eng := New(store)
	plain, err := eng.Execute(context.Background(), `(at "05/10/2018")
agentid = 2
proc p["%sbblv%"] write ip i as e
return p, i`)
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := eng.Execute(context.Background(), `(at "05/10/2018")
agentid = 2
proc p["%sbblv%"] write ip i as e
return distinct p, i`)
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup.Rows) >= len(plain.Rows) {
		t.Errorf("distinct (%d) should be smaller than plain (%d)", len(dedup.Rows), len(plain.Rows))
	}
	if len(dedup.Rows) != 1 {
		t.Errorf("expected one distinct (process, ip) pair, got %d", len(dedup.Rows))
	}
}
