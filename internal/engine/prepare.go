package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/numfmt"
	"github.com/aiql/aiql/internal/obs"
	"github.com/aiql/aiql/internal/qtext"
)

// ParamType and ParamSpec describe one entry of a prepared statement's
// typed parameter signature, inferred by the semantic pass from each
// placeholder's position.
type (
	// ParamType is the value class a placeholder accepts.
	ParamType = semantic.ParamType
	// ParamSpec is one (name, type) signature entry.
	ParamSpec = semantic.ParamSpec
)

// Parameter types (re-exported from the semantic pass).
const (
	ParamString = semantic.ParamString
	ParamNumber = semantic.ParamNumber
	ParamTime   = semantic.ParamTime
)

// Params carries the bindings for one execution of a prepared
// statement: placeholder name → value. Strings bind string and time
// parameters; float64/int (JSON numbers) bind number parameters; a
// numeric string is accepted for a number parameter.
type Params map[string]any

// ParamErrCode classifies a binding failure.
type ParamErrCode string

// Binding failure classes, mirrored by the HTTP error model's codes.
const (
	ParamUnknown  ParamErrCode = "unknown_param"
	ParamMissing  ParamErrCode = "missing_param"
	ParamMismatch ParamErrCode = "param_type_mismatch"
)

// ParamError reports a bad binding: a name the statement does not
// declare, a declared parameter with no binding, or a value of the
// wrong type.
type ParamError struct {
	Code ParamErrCode
	Name string
	Msg  string
}

// Error implements the error interface.
func (e *ParamError) Error() string { return "engine: " + e.Msg }

// Prepared is an immutable compiled query template: the checked AST
// with `$name` placeholders still in place, its typed parameter
// signature, the scheduled pattern order (computed once, from
// pruning-power estimates with placeholders unconstrained), and a
// fingerprint identifying the template across reformattings. Binding
// substitutes values into a private copy, so one Prepared serves any
// number of concurrent executions.
type Prepared struct {
	src         string
	kind        string
	fingerprint uint64
	params      []ParamSpec

	info *semantic.Info
	mq   *ast.MultieventQuery // executable template; dependency queries arrive rewritten
	aq   *ast.AnomalyQuery    // set instead of mq for anomaly queries

	// stripped is the template with parameterized constraints removed,
	// used for estimate-based explains; order is the scheduled pattern
	// sequence (original indices) every execution reuses.
	stripped *ast.MultieventQuery
	order    []int

	// plan is the fully compiled prepare-time pattern plan, kept only
	// for parameterless multievent/dependency statements (the stripped
	// template IS the executable query then). Executions reuse it while
	// the store sits at planCommits — snapshots are memoized between
	// commits, so the candidate sets are still exact — which makes the
	// one-shot Execute wrapper compile exactly once.
	plan        *queryPlan
	planCommits uint64
}

// Source returns the original query text.
func (p *Prepared) Source() string { return p.src }

// Kind returns the query family: multievent, dependency, or anomaly.
func (p *Prepared) Kind() string { return p.kind }

// Columns returns the result header the statement produces.
func (p *Prepared) Columns() []string { return p.info.Columns }

// Params returns the typed parameter signature in first-appearance
// order. The returned slice must not be mutated.
func (p *Prepared) Params() []ParamSpec { return p.params }

// Fingerprint identifies the template: a hash of the
// whitespace-normalized source, so reformatting the same template maps
// to the same fingerprint while any semantic change produces a new one.
func (p *Prepared) Fingerprint() uint64 { return p.fingerprint }

// Fingerprint hashes query text the way Prepared fingerprints do.
func Fingerprint(src string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(qtext.Normalize(src)))
	return h.Sum64()
}

// Prepare compiles one AIQL query into an immutable template:
// parse → semantic check (parameter signature inference) → dependency
// rewrite → pattern scheduling, everything execution can reuse. The
// scheduling estimates treat parameterized constraints as
// unconstrained, so the order is computed once and every execution
// skips the parse/check/estimate passes entirely.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	p := &Prepared{src: src, kind: q.Kind(), fingerprint: Fingerprint(src)}
	switch x := q.(type) {
	case *ast.DependencyQuery:
		if _, err := semantic.Check(x); err != nil {
			return nil, err
		}
		mq, err := RewriteDependency(x)
		if err != nil {
			return nil, err
		}
		if p.info, err = semantic.Check(mq); err != nil {
			return nil, err
		}
		p.mq = mq
	case *ast.MultieventQuery:
		if p.info, err = semantic.Check(x); err != nil {
			return nil, err
		}
		p.mq = x
	case *ast.AnomalyQuery:
		if p.info, err = semantic.Check(x); err != nil {
			return nil, err
		}
		p.aq = x
	default:
		return nil, fmt.Errorf("engine: unsupported query type %T", q)
	}
	p.params = p.info.Params

	// Schedule once. The stripped copy drops parameterized constraints
	// (their selectivity is unknowable until bind time), so estimates
	// are conservative; the resulting order is frozen into the plan.
	if p.mq != nil {
		p.stripped = stripParams(cloneMultievent(p.mq))
	} else {
		p.stripped = stripParams(cloneMultievent(&ast.MultieventQuery{
			Head_:    *p.aq.Header(),
			Patterns: []ast.EventPattern{p.aq.Pattern},
		}))
	}
	needEstimates := len(p.stripped.Patterns) > 1 && !e.cfg.DisableReordering
	commits := e.store.Commits()
	plan, err := e.buildPlanEstimates(e.store.Snapshot(), p.stripped, needEstimates)
	if err != nil {
		return nil, err
	}
	for _, pp := range plan.patterns {
		p.order = append(p.order, pp.idx)
	}
	if len(p.params) == 0 && p.mq != nil {
		p.plan = plan
		p.planCommits = commits
	}
	return p, nil
}

// Bind substitutes params into a private copy of the template and
// returns the executable query. It rejects bindings for names the
// signature does not declare, missing bindings, and values of the
// wrong type; the template itself is never mutated.
func (p *Prepared) Bind(params Params) (ast.Query, error) {
	vals, err := p.coerceParams(params)
	if err != nil {
		return nil, err
	}
	if p.aq != nil {
		bound := cloneAnomaly(p.aq)
		if err := bindQuery(&bound.Head_, []*ast.EventPattern{&bound.Pattern}, nil, vals); err != nil {
			return nil, err
		}
		return bound, nil
	}
	bound := cloneMultievent(p.mq)
	if err := bindQuery(&bound.Head_, patternPtrs(bound.Patterns), bound.With, vals); err != nil {
		return nil, err
	}
	return bound, nil
}

// CheckParams validates params against the signature — unknown names,
// missing bindings, type coercion — without cloning the template; the
// cheap pre-admission check services run before Bind.
func (p *Prepared) CheckParams(params Params) error {
	_, err := p.coerceParams(params)
	return err
}

// coerceParams validates the bindings against the signature and coerces
// each value to its declared type.
func (p *Prepared) coerceParams(params Params) (map[string]ast.Value, error) {
	for name := range params {
		if !p.declares(name) {
			return nil, &ParamError{Code: ParamUnknown, Name: name,
				Msg: fmt.Sprintf("unknown parameter $%s (statement declares: %s)", name, p.signatureList())}
		}
	}
	vals := make(map[string]ast.Value, len(p.params))
	for _, spec := range p.params {
		raw, ok := params[spec.Name]
		if !ok {
			return nil, &ParamError{Code: ParamMissing, Name: spec.Name,
				Msg: fmt.Sprintf("missing parameter $%s (%s)", spec.Name, spec.Type)}
		}
		v, err := coerceValue(spec, raw)
		if err != nil {
			return nil, err
		}
		vals[spec.Name] = v
	}
	return vals, nil
}

func (p *Prepared) declares(name string) bool {
	for _, spec := range p.params {
		if spec.Name == name {
			return true
		}
	}
	return false
}

func (p *Prepared) signatureList() string {
	if len(p.params) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(p.params))
	for _, spec := range p.params {
		parts = append(parts, fmt.Sprintf("$%s (%s)", spec.Name, spec.Type))
	}
	return strings.Join(parts, ", ")
}

// coerceValue converts one binding to the declared parameter type.
func coerceValue(spec ParamSpec, raw any) (ast.Value, error) {
	mismatch := func(want string) error {
		return &ParamError{Code: ParamMismatch, Name: spec.Name,
			Msg: fmt.Sprintf("parameter $%s expects a %s value, got %v (%T)", spec.Name, want, raw, raw)}
	}
	switch spec.Type {
	case ParamString:
		switch x := raw.(type) {
		case string:
			return ast.Value{Str: x}, nil
		case float64:
			return ast.Value{Str: numfmt.Format(x)}, nil
		case int:
			return ast.Value{Str: strconv.Itoa(x)}, nil
		}
		return ast.Value{}, mismatch("string")
	case ParamNumber:
		switch x := raw.(type) {
		case float64:
			return numValue(x), nil
		case int:
			return numValue(float64(x)), nil
		case int64:
			return numValue(float64(x)), nil
		case string:
			n, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return ast.Value{}, mismatch("number")
			}
			return numValue(n), nil
		}
		return ast.Value{}, mismatch("number")
	case ParamTime:
		s, ok := raw.(string)
		if !ok {
			return ast.Value{}, mismatch("time")
		}
		if _, _, err := parser.ParseInstant(s, false); err != nil {
			return ast.Value{}, &ParamError{Code: ParamMismatch, Name: spec.Name,
				Msg: fmt.Sprintf("parameter $%s expects a time literal: %v", spec.Name, err)}
		}
		return ast.Value{Str: s}, nil
	}
	return ast.Value{}, mismatch(string(spec.Type))
}

func numValue(n float64) ast.Value {
	return ast.Value{IsNum: true, Num: n, Str: strconv.FormatFloat(n, 'g', -1, 64)}
}

// bindQuery substitutes coerced values into the cloned query's head,
// patterns, and with-conditions.
func bindQuery(head *ast.Head, pats []*ast.EventPattern, with []ast.WithCond, vals map[string]ast.Value) error {
	if err := bindWindow(head.Window, vals); err != nil {
		return err
	}
	bindFilters(head.Globals, vals)
	for _, pat := range pats {
		bindFilters(pat.Subject.Filters, vals)
		bindFilters(pat.Object.Filters, vals)
		bindFilters(pat.EvtFilters, vals)
	}
	for i, w := range with {
		if c, ok := w.(ast.EventCond); ok && c.Val.Param != "" {
			c.Val = vals[c.Val.Param]
			with[i] = c
		}
	}
	return nil
}

// bindFilters replaces placeholder values in place (the slice belongs
// to a private clone). An equality filter bound to a string containing
// LIKE wildcards becomes a LIKE filter — the same rule the parser
// applies to literals.
func bindFilters(fs []ast.Filter, vals map[string]ast.Value) {
	for i := range fs {
		if fs[i].Val.Param == "" {
			continue
		}
		v := vals[fs[i].Val.Param]
		fs[i].Val = v
		if fs[i].Op == ast.CmpEQ && !v.IsNum && strings.ContainsAny(v.Str, "%_") {
			fs[i].Op = ast.CmpLike
		}
	}
}

// bindWindow resolves time-window placeholders: `at $p` expands to the
// literal's whole-day (or whole-hour) window, `from $a to $b` parses
// each bound. The bound window must be non-empty.
func bindWindow(w *ast.TimeWindow, vals map[string]ast.Value) error {
	if w == nil || !w.HasParams() {
		return nil
	}
	if w.AtParam != "" {
		lit := vals[w.AtParam].Str
		from, to, err := parser.ParseInstant(lit, true)
		if err != nil {
			return &ParamError{Code: ParamMismatch, Name: w.AtParam,
				Msg: fmt.Sprintf("parameter $%s: %v", w.AtParam, err)}
		}
		w.From, w.To = from, to
		w.Raw = fmt.Sprintf("at %q", lit)
		w.AtParam = ""
		return nil
	}
	if w.FromParam != "" {
		lit := vals[w.FromParam].Str
		from, _, err := parser.ParseInstant(lit, false)
		if err != nil {
			return &ParamError{Code: ParamMismatch, Name: w.FromParam,
				Msg: fmt.Sprintf("parameter $%s: %v", w.FromParam, err)}
		}
		w.From = from
		w.FromParam = ""
	}
	if w.ToParam != "" {
		lit := vals[w.ToParam].Str
		to, _, err := parser.ParseInstant(lit, false)
		if err != nil {
			return &ParamError{Code: ParamMismatch, Name: w.ToParam,
				Msg: fmt.Sprintf("parameter $%s: %v", w.ToParam, err)}
		}
		w.To = to
		w.ToParam = ""
	}
	if w.From != 0 && w.To != 0 && w.To <= w.From {
		return &ParamError{Code: ParamMismatch,
			Msg: fmt.Sprintf("bound time window is empty: %s is not after %s",
				time.Unix(0, w.To).UTC().Format("2006-01-02 15:04:05"),
				time.Unix(0, w.From).UTC().Format("2006-01-02 15:04:05"))}
	}
	w.Raw = fmt.Sprintf("from %q to %q",
		time.Unix(0, w.From).UTC().Format("2006-01-02 15:04:05"),
		time.Unix(0, w.To).UTC().Format("2006-01-02 15:04:05"))
	return nil
}

// ExecutePrepared binds params and runs the statement, materializing
// the result in the engine's canonical sorted order — the execute-many
// half of Prepare: no parse, no semantic pass, no re-scheduling.
func (e *Engine) ExecutePrepared(ctx context.Context, p *Prepared, params Params) (*Result, error) {
	start := time.Now()
	cur, err := e.ExecutePreparedCursor(ctx, p, params, CursorOptions{})
	if err != nil {
		return nil, err
	}
	return materializeCursor(cur, start)
}

// ExecutePreparedCursor binds params and starts the statement as a
// streaming cursor. The execution pins one store snapshot end to end
// and reuses the prepare-time pattern order, so concurrent executions
// of one statement share the compiled plan while each sees its own
// frozen segment set.
func (e *Engine) ExecutePreparedCursor(ctx context.Context, p *Prepared, params Params, opts CursorOptions) (*Cursor, error) {
	psp := obs.SpanFromContext(ctx).Child("plan")
	defer psp.End()
	bound, err := p.Bind(params)
	if err != nil {
		return nil, err
	}
	snap := e.store.Snapshot()
	if aq, ok := bound.(*ast.AnomalyQuery); ok {
		run := func(cctx context.Context, stats *ExecStats, emit emitFunc) error {
			return e.runAnomaly(cctx, snap, aq, p.info, stats, emit)
		}
		return e.startCursor(ctx, p.info.Columns, opts, run), nil
	}
	mq := bound.(*ast.MultieventQuery)
	// Parameterless statements on an unchanged store reuse the
	// prepare-time plan outright (pattern plans are read-only during
	// execution: filters are copied before narrowing), so the one-shot
	// Execute wrapper compiles exactly once and repeated executions of
	// a literal statement skip candidate-set recomputation entirely.
	plan := p.plan
	if plan == nil || e.store.Commits() != p.planCommits {
		var err error
		plan, err = e.buildPlanFixed(snap, mq, p.order)
		if err != nil {
			return nil, err
		}
	}
	run := func(cctx context.Context, stats *ExecStats, emit emitFunc) error {
		return e.runMultievent(cctx, snap, mq, p.info, plan, stats, emit, opts.Limit)
	}
	return e.startCursor(ctx, p.info.Columns, opts, run), nil
}

// ExplainPrepared reports the statement's frozen pattern order with
// pruning-power estimates computed against the current snapshot
// (placeholders treated as unconstrained).
func (e *Engine) ExplainPrepared(p *Prepared) ([]ExplainEntry, error) {
	plan, err := e.compilePatterns(e.store.Snapshot(), p.stripped, true)
	if err != nil {
		return nil, err
	}
	orderPlan(plan, p.order)
	out := make([]ExplainEntry, 0, len(plan.patterns))
	for _, pp := range plan.patterns {
		out = append(out, ExplainEntry{Alias: pp.alias, Estimate: pp.estimate})
	}
	return out, nil
}

// ---------------------------------------------------------------- clone

// cloneMultievent deep-copies the parts of a query binding mutates:
// head, entity filters, event filters, with-conditions. Return items
// and expressions carry no placeholders and are shared.
func cloneMultievent(q *ast.MultieventQuery) *ast.MultieventQuery {
	out := *q
	cloneHead(&out.Head_)
	out.Patterns = make([]ast.EventPattern, len(q.Patterns))
	for i := range q.Patterns {
		out.Patterns[i] = clonePattern(&q.Patterns[i])
	}
	out.With = append([]ast.WithCond(nil), q.With...)
	return &out
}

func cloneAnomaly(q *ast.AnomalyQuery) *ast.AnomalyQuery {
	out := *q
	cloneHead(&out.Head_)
	out.Pattern = clonePattern(&q.Pattern)
	return &out
}

func cloneHead(h *ast.Head) {
	if h.Window != nil {
		w := *h.Window
		h.Window = &w
	}
	h.Globals = append([]ast.Filter(nil), h.Globals...)
}

func clonePattern(p *ast.EventPattern) ast.EventPattern {
	out := *p
	out.Subject.Filters = append([]ast.Filter(nil), p.Subject.Filters...)
	out.Object.Filters = append([]ast.Filter(nil), p.Object.Filters...)
	out.EvtFilters = append([]ast.Filter(nil), p.EvtFilters...)
	return out
}

func patternPtrs(pats []ast.EventPattern) []*ast.EventPattern {
	out := make([]*ast.EventPattern, len(pats))
	for i := range pats {
		out[i] = &pats[i]
	}
	return out
}

// stripParams removes parameterized constraints from a cloned template,
// leaving the literal ones — the shape scheduling estimates run
// against, since a placeholder's selectivity is unknown until bind
// time.
func stripParams(q *ast.MultieventQuery) *ast.MultieventQuery {
	if w := q.Head_.Window; w != nil && w.HasParams() {
		q.Head_.Window = nil
	}
	q.Head_.Globals = literalFilters(q.Head_.Globals)
	for i := range q.Patterns {
		pat := &q.Patterns[i]
		pat.Subject.Filters = literalFilters(pat.Subject.Filters)
		pat.Object.Filters = literalFilters(pat.Object.Filters)
		pat.EvtFilters = literalFilters(pat.EvtFilters)
	}
	var with []ast.WithCond
	for _, w := range q.With {
		if c, ok := w.(ast.EventCond); ok && c.Val.Param != "" {
			continue
		}
		with = append(with, w)
	}
	q.With = with
	return q
}

func literalFilters(fs []ast.Filter) []ast.Filter {
	out := fs[:0]
	for _, f := range fs {
		if f.Val.Param == "" {
			out = append(out, f)
		}
	}
	return out
}
