package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is the outcome of executing a query: a column header, string-
// rendered rows, and execution statistics. Rows are rendered to strings so
// results can be displayed directly and compared across engines in the
// cross-engine equivalence tests.
type Result struct {
	Columns []string
	Rows    [][]string
	Stats   ExecStats
}

// ExecStats describes how a query executed.
type ExecStats struct {
	Elapsed       time.Duration
	ScannedEvents int64    // events touched by pattern scans (cache hits scan nothing)
	Bindings      int      // partial bindings materialized
	PatternOrder  []string // event aliases in scheduled execution order
	Partitions    int      // hypertable chunks in the snapshot queried
	SegmentHits   int      // sealed-segment scans served from the scan cache
	SegmentMisses int      // sealed-segment scans that had to run
	// PoolWait is coordinator time spent blocked on pooled scan helpers
	// (zero under sequential scanning): high values mean the shared
	// worker pool, not this query's own scanning, bounded the latency.
	PoolWait time.Duration
}

// Accumulate folds another execution's counters into s — the shard
// coordinator sums the per-member statistics of a scatter-gathered
// query this way. Elapsed and PatternOrder are deliberately left
// untouched: wall-clock belongs to the merging execution, and member
// plans are scheduled independently per shard.
func (s *ExecStats) Accumulate(o ExecStats) {
	s.ScannedEvents += o.ScannedEvents
	s.Bindings += o.Bindings
	s.Partitions += o.Partitions
	s.SegmentHits += o.SegmentHits
	s.SegmentMisses += o.SegmentMisses
	s.PoolWait += o.PoolWait
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// RowLess is the canonical row ordering of a finished result:
// lexicographic over the rendered cells, shorter rows first on a shared
// prefix. It is exported because it is a cross-process contract — the
// shard coordinator merge-sorts member row streams with exactly this
// comparator, so a scatter-gathered result is byte-identical to the
// same query executed against one store.
func RowLess(a, b []string) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// SortRows orders rows lexicographically (RowLess), making result sets
// canonical for comparison and display.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool { return RowLess(r.Rows[i], r.Rows[j]) })
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// RowSet returns the rows as a set of tab-joined strings, for equality
// checks that ignore row order and duplicates.
func (r *Result) RowSet() map[string]struct{} {
	set := make(map[string]struct{}, len(r.Rows))
	for _, row := range r.Rows {
		set[strings.Join(row, "\t")] = struct{}{}
	}
	return set
}
