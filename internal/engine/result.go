package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is the outcome of executing a query: a column header, string-
// rendered rows, and execution statistics. Rows are rendered to strings so
// results can be displayed directly and compared across engines in the
// cross-engine equivalence tests.
type Result struct {
	Columns []string
	Rows    [][]string
	Stats   ExecStats
}

// ExecStats describes how a query executed.
type ExecStats struct {
	Elapsed       time.Duration
	ScannedEvents int64    // events touched by pattern scans (cache hits scan nothing)
	Bindings      int      // partial bindings materialized
	PatternOrder  []string // event aliases in scheduled execution order
	Partitions    int      // hypertable chunks in the snapshot queried
	SegmentHits   int      // sealed-segment scans served from the scan cache
	SegmentMisses int      // sealed-segment scans that had to run
	// PoolWait is coordinator time spent blocked on pooled scan helpers
	// (zero under sequential scanning): high values mean the shared
	// worker pool, not this query's own scanning, bounded the latency.
	PoolWait time.Duration
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// SortRows orders rows lexicographically, making result sets canonical
// for comparison and display.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// RowSet returns the rows as a set of tab-joined strings, for equality
// checks that ignore row order and duplicates.
func (r *Result) RowSet() map[string]struct{} {
	set := make(map[string]struct{}, len(r.Rows))
	for _, row := range r.Rows {
		set[strings.Join(row, "\t")] = struct{}{}
	}
	return set
}
