// Package qtext canonicalizes AIQL query text. The service's result
// cache and the engine's prepared-statement fingerprints both key on the
// normalized form, so a reformatted query (line breaks, indentation)
// maps to the same template.
package qtext

import "strings"

// Normalize canonicalizes query text: outside string literals,
// whitespace runs collapse to one space and surrounding whitespace is
// trimmed. Literal contents are preserved byte-for-byte — AIQL strings
// may contain significant whitespace, and collapsing it would alias
// distinct queries to one key. Quoting follows the lexer: double or
// single quotes with backslash escapes.
func Normalize(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	var quote byte   // the active quote character, 0 outside literals
	pending := false // a collapsed whitespace run awaits emission
	escaped := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if quote != 0 {
			b.WriteByte(c)
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == quote:
				quote = 0
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			pending = b.Len() > 0
			continue
		}
		if pending {
			b.WriteByte(' ')
			pending = false
		}
		if c == '"' || c == '\'' {
			quote = c
		}
		b.WriteByte(c)
	}
	return b.String()
}
