// Package aiql is the public API of the AIQL system: a query system for
// efficiently investigating complex attack behaviors over system
// monitoring data (Gao et al., VLDB 2019 / USENIX ATC 2018).
//
// The system ingests SVO events — ⟨subject process, operation, object⟩
// interactions among processes, files, and network connections observed
// on enterprise hosts — into a domain-optimized store (entity
// deduplication, attribute indexes, hypertable chunking by host and
// time), and executes queries written in the Attack Investigation Query
// Language:
//
//   - multievent queries express multi-step attack behaviors as event
//     patterns related by shared entity variables and temporal order;
//   - dependency queries chain constraints along an event path for
//     causality tracking (forward/backward), including cross-host hops;
//   - anomaly queries aggregate events over sliding windows and filter
//     groups against their own historical windows.
//
// Basic usage:
//
//	db := aiql.Open()
//	db.Append(aiql.Record{ ... })
//	db.Flush()
//	res, err := db.Query(`
//	    agentid = 2
//	    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
//	    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
//	    with evt1 before evt2
//	    return distinct p1, p2, f1`)
//	fmt.Print(res.Table())
package aiql

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/aiql/aiql/internal/aiql/ast"
	"github.com/aiql/aiql/internal/aiql/parser"
	"github.com/aiql/aiql/internal/aiql/semantic"
	"github.com/aiql/aiql/internal/engine"
	"github.com/aiql/aiql/internal/eventstore"
	"github.com/aiql/aiql/internal/sysmon"
	"github.com/aiql/aiql/internal/workpool"
)

// Re-exported domain types. Process, File, and Netconn describe system
// entities; Record is one raw monitoring record as produced by a
// collection agent.
type (
	// Process is a system entity originating from a software application.
	Process = sysmon.Process
	// File is a filesystem entity.
	File = sysmon.File
	// Netconn is a network connection entity.
	Netconn = sysmon.Netconn
	// Record is one raw monitoring record.
	Record = eventstore.Record
	// Operation identifies the interaction an event records.
	Operation = sysmon.Operation
	// Result is a query result: columns, string-rendered rows, and
	// execution statistics.
	Result = engine.Result
	// StorageOptions toggles the storage optimizations.
	StorageOptions = eventstore.Options
	// EngineConfig toggles the query engine optimizations.
	EngineConfig = engine.Config
	// Cursor is a pull-based iterator over a query's projected rows.
	Cursor = engine.Cursor
	// CursorOptions shape a streaming execution (limit pushdown).
	CursorOptions = engine.CursorOptions
	// Params carries bindings for one execution of a prepared
	// statement: placeholder name → value (strings for string/time
	// parameters, numbers for number parameters).
	Params = engine.Params
	// ParamSpec is one entry of a prepared statement's typed parameter
	// signature.
	ParamSpec = engine.ParamSpec
	// ParamType classifies what kind of value a $name placeholder
	// accepts: ParamString, ParamNumber, or ParamTime.
	ParamType = engine.ParamType
	// ParamError reports a bad binding (unknown name, missing binding,
	// wrong type) with a machine-readable code.
	ParamError = engine.ParamError
	// ExplainEntry is one scheduled pattern of an execution plan.
	ExplainEntry = engine.ExplainEntry
	// StandingState carries a standing query's evaluation watermark —
	// which commits it has seen and which rows it has reported.
	StandingState = engine.StandingState
	// DeltaResult is one standing-query evaluation's outcome: the rows
	// new since the previous evaluation against the same state.
	DeltaResult = engine.DeltaResult
)

// Parameter types (re-exported).
const (
	ParamString = engine.ParamString
	ParamNumber = engine.ParamNumber
	ParamTime   = engine.ParamTime
)

// Operations (re-exported).
const (
	OpStart   = sysmon.OpStart
	OpEnd     = sysmon.OpEnd
	OpRead    = sysmon.OpRead
	OpWrite   = sysmon.OpWrite
	OpExecute = sysmon.OpExecute
	OpDelete  = sysmon.OpDelete
	OpRename  = sysmon.OpRename
	OpChmod   = sysmon.OpChmod
	OpConnect = sysmon.OpConnect
	OpAccept  = sysmon.OpAccept
	OpSend    = sysmon.OpSend
	OpRecv    = sysmon.OpRecv
)

// Entity type discriminators for Record.ObjType.
const (
	EntityProcess = sysmon.EntityProcess
	EntityFile    = sysmon.EntityFile
	EntityNetconn = sysmon.EntityNetconn
)

// DB is an AIQL database: the optimized event store plus the query
// engine. It is safe for concurrent readers.
type DB struct {
	store *eventstore.Store
	eng   *engine.Engine
}

// Open creates an empty database with all storage and engine
// optimizations enabled.
func Open() *DB {
	return OpenWithOptions(eventstore.DefaultOptions(), engine.Config{})
}

// OpenWithOptions creates a database with explicit storage and engine
// configurations, used by benchmarks and ablation studies.
func OpenWithOptions(storage StorageOptions, cfg EngineConfig) *DB {
	store := eventstore.New(storage)
	return &DB{store: store, eng: engine.NewWithConfig(store, cfg)}
}

// OpenDir opens (creating or recovering) the durable database rooted at
// dir with default options: sealed segments live as individual files
// loaded without re-indexing, a MANIFEST names the live segment set,
// and a write-ahead log makes committed appends durable between seals.
// Close the database to release the log.
func OpenDir(dir string) (*DB, error) {
	storage := eventstore.DefaultOptions()
	storage.Dir = dir
	return OpenDirWithOptions(storage, engine.Config{})
}

// OpenDirWithOptions opens a durable database with explicit storage and
// engine configurations; storage.Dir names the directory.
func OpenDirWithOptions(storage StorageOptions, cfg EngineConfig) (*DB, error) {
	store, err := eventstore.Open(storage)
	if err != nil {
		return nil, err
	}
	return &DB{store: store, eng: engine.NewWithConfig(store, cfg)}, nil
}

// OpenPath opens a dataset from either on-disk form: a directory is a
// durable store (OpenDir), anything else a legacy gob snapshot
// (LoadFile).
func OpenPath(path string) (*DB, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return OpenDir(path)
	}
	return LoadFile(path)
}

// OpenPathWithOptions is OpenPath with explicit storage and engine
// configurations; for directories storage.Dir is overridden with path.
func OpenPathWithOptions(path string, storage StorageOptions, cfg EngineConfig) (*DB, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		storage.Dir = path
		return OpenDirWithOptions(storage, cfg)
	}
	storage.Dir = ""
	return LoadFileWithOptions(path, storage, cfg)
}

// Close stops the database's background compactor and closes its
// write-ahead log. In-memory databases close trivially; in-flight
// queries on pinned snapshots are unaffected either way.
func (db *DB) Close() error { return db.store.Close() }

// Closed reports whether Close has been called. Health endpoints and
// shard probes use this to report readiness without touching store
// locks.
func (db *DB) Closed() bool { return db.store.Closed() }

// Compact merges chains of small sealed segments until none remains
// below the configured target, retiring the old segment IDs from the
// engine's scan cache. Durable databases install each merge as a new
// manifest edition. Results are unaffected: compaction moves no data in
// or out and leaves result caches valid.
func (db *DB) Compact() eventstore.CompactionResult { return db.store.Compact() }

// StartCompactor runs Compact in the background every interval; Close
// (or StopCompactor) stops it.
func (db *DB) StartCompactor(interval time.Duration) { db.store.StartCompactor(interval) }

// StopCompactor stops the background compactor, if running.
func (db *DB) StopCompactor() { db.store.StopCompactor() }

// DurableStats reports the database's on-disk footprint (segment files,
// WAL, manifest edition) and compaction activity.
func (db *DB) DurableStats() eventstore.DurableStats { return db.store.DurableStats() }

// StorageStats reports where sealed-segment bytes live: mmap'd v2
// segment files versus heap-resident decodes, plus block-cache counters.
func (db *DB) StorageStats() eventstore.StorageStats { return db.store.StorageStats() }

// UpgradeSegments rewrites persisted v1 segment files in place in the
// v2 mmap-friendly columnar format, returning how many were upgraded.
func (db *DB) UpgradeSegments() (int, error) { return db.store.UpgradeSegments() }

// SaveDir writes the database's full sealed state into dir as a durable
// store directory — the migration path from legacy gob snapshots.
func (db *DB) SaveDir(dir string) error { return db.store.SaveDir(dir) }

// ErrClosed reports a write against a closed database — reachable when
// a live writer races a catalog hot-swap that closes the store. The
// write is rejected cleanly; nothing is partially applied.
var ErrClosed = eventstore.ErrClosed

// Append ingests one monitoring record. Returns ErrClosed after Close.
func (db *DB) Append(r Record) error { return db.store.Append(r) }

// AppendAll bulk-ingests records: the whole batch is committed (visible
// to queries) before the call returns, and under durable storage the
// batch is group-committed with a single WAL fsync. Returns ErrClosed
// after Close.
func (db *DB) AppendAll(rs []Record) error { return db.store.AppendAll(rs) }

// Flush commits buffered records and seals every active memtable.
// Returns ErrClosed after Close.
func (db *DB) Flush() error { return db.store.Flush() }

// Commits reports the store's commit counter: it advances whenever new
// events become visible, so pollers (standing-query evaluators, result
// caches) can detect fresh data without scanning.
func (db *DB) Commits() uint64 { return db.store.Commits() }

// Len returns the number of committed events.
func (db *DB) Len() int { return db.store.Len() }

// TimeRange returns the [min, max] start timestamps of committed events.
func (db *DB) TimeRange() (time.Time, time.Time) {
	lo, hi := db.store.TimeRange()
	return time.Unix(0, lo), time.Unix(0, hi)
}

// Stmt is a prepared AIQL statement: the query template is compiled
// once (parse → semantic check → dependency rewrite → pattern
// scheduling) and executed any number of times with different `$name`
// parameter bindings, each execution skipping everything but the scan.
// A Stmt is immutable and safe for concurrent use.
type Stmt struct {
	db *DB
	p  *engine.Prepared
}

// Prepare compiles one AIQL query into a reusable statement. The query
// may contain `$name` placeholders in value positions (entity patterns,
// attribute comparisons, time windows, global constraints); the
// returned statement's Params reports the inferred typed signature.
func (db *DB) Prepare(src string) (*Stmt, error) {
	p, err := db.eng.Prepare(src)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, p: p}, nil
}

// Exec binds params and runs the statement under ctx, materializing the
// result in canonical sorted order.
func (s *Stmt) Exec(ctx context.Context, params Params) (*Result, error) {
	return s.db.eng.ExecutePrepared(ctx, s.p, params)
}

// ExecCursor binds params and starts the statement as a streaming
// cursor; see DB.QueryCursor for cursor semantics.
func (s *Stmt) ExecCursor(ctx context.Context, params Params, opts CursorOptions) (*Cursor, error) {
	return s.db.eng.ExecutePreparedCursor(ctx, s.p, params, opts)
}

// NewStandingState returns an empty standing-query state; the first
// ExecDelta against it reports every current match (the baseline).
func NewStandingState() *StandingState { return engine.NewStandingState() }

// ExecDelta evaluates the statement as a standing query: a no-op when
// the store has no new commits since st's last evaluation, otherwise a
// (scan-cache-accelerated) re-execution that reports only the rows not
// seen before. st is not safe for concurrent use; callers serialize
// evaluations per state.
func (s *Stmt) ExecDelta(ctx context.Context, params Params, st *StandingState) (*DeltaResult, error) {
	return s.db.eng.ExecutePreparedDelta(ctx, s.p, params, st)
}

// Explain reports the statement's frozen pattern order with
// pruning-power estimates against the current store state.
func (s *Stmt) Explain() ([]ExplainEntry, error) {
	return s.db.eng.ExplainPrepared(s.p)
}

// Check validates params against the statement's signature without
// executing: unknown names, missing bindings, and type mismatches are
// reported as *ParamError.
func (s *Stmt) Check(params Params) error {
	return s.p.CheckParams(params)
}

// Params returns the statement's typed parameter signature in
// first-appearance order.
func (s *Stmt) Params() []ParamSpec { return s.p.Params() }

// Columns returns the result header the statement produces.
func (s *Stmt) Columns() []string { return s.p.Columns() }

// Kind returns the statement's query family.
func (s *Stmt) Kind() string { return s.p.Kind() }

// Source returns the statement's original query text.
func (s *Stmt) Source() string { return s.p.Source() }

// Fingerprint identifies the template across reformattings; result
// caches key on it together with the canonicalized bindings.
func (s *Stmt) Fingerprint() uint64 { return s.p.Fingerprint() }

// Query prepares and executes one AIQL query without a deadline — the
// one-shot form of Prepare + Exec. Use QueryContext to bound execution.
func (db *DB) Query(src string) (*Result, error) {
	return db.eng.Execute(context.Background(), src)
}

// QueryContext parses, validates, and executes one AIQL query under ctx.
// Cancellation or an expired deadline aborts partition scans mid-flight;
// the returned error then wraps ctx.Err() and the Result (non-nil for
// queries that began executing) carries the statistics accumulated up to
// the abort.
func (db *DB) QueryContext(ctx context.Context, src string) (*Result, error) {
	return db.eng.Execute(ctx, src)
}

// QueryCursor starts one AIQL query and returns a cursor that yields
// projected rows on demand: results stream with bounded memory instead
// of being materialized, and closing the cursor aborts the remaining
// scan work. With CursorOptions.Limit > 0 the engine pushes the limit
// into the final pattern scan, terminating early once the rows have
// been produced; streamed rows arrive in production order (no global
// sort). Parse, semantic, and planning errors are returned immediately;
// execution errors surface through Cursor.Err. The cursor must be
// closed.
func (db *DB) QueryCursor(ctx context.Context, src string, opts CursorOptions) (*Cursor, error) {
	return db.eng.ExecuteCursor(ctx, src, opts)
}

// Check parses and validates a query without executing it, returning the
// first syntax or semantic error. The web UI's syntax checker uses it.
func Check(src string) error {
	q, err := parser.Parse(src)
	if err != nil {
		return err
	}
	switch x := q.(type) {
	case *ast.DependencyQuery:
		if _, err := semantic.Check(x); err != nil {
			return err
		}
		mq, err := engine.RewriteDependency(x)
		if err != nil {
			return err
		}
		_, err = semantic.Check(mq)
		return err
	default:
		_, err := semantic.Check(q)
		return err
	}
}

// QueryKind reports which family a query belongs to ("multievent",
// "dependency", or "anomaly"), or an error if it does not parse.
func QueryKind(src string) (string, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	return q.Kind(), nil
}

// Explain returns the engine's scheduled pattern order with pruning-power
// estimates (lower estimate = scheduled earlier).
func (db *DB) Explain(src string) (string, error) {
	entries, err := db.eng.Explain(src)
	if err != nil {
		return "", err
	}
	out := ""
	for i, e := range entries {
		out += fmt.Sprintf("%d. %s (estimated matches: %d)\n", i+1, e.Alias, e.Estimate)
	}
	return out, nil
}

// ExplainPlan returns the engine's scheduled pattern order with
// pruning-power estimates as structured entries, for API consumers.
func (db *DB) ExplainPlan(src string) ([]engine.ExplainEntry, error) {
	return db.eng.Explain(src)
}

// EnableSegmentScanCache installs the engine's segment scan cache with
// the given byte budget (non-positive removes it): per-pattern filtered
// scan results over sealed segments are cached by (filter fingerprint,
// segment id) and reused verbatim across executions, so an append only
// re-scans the unsealed tail and fresh segments. Disabled by default so
// benchmarks and ablations measure raw scans unless they opt in; the
// server enables it for every dataset it serves.
func (db *DB) EnableSegmentScanCache(maxBytes int64) {
	db.eng.SetScanCache(maxBytes)
}

// ScanCacheStats reports the segment scan cache's counters; zero values
// when the cache is disabled.
func (db *DB) ScanCacheStats() engine.ScanCacheStats {
	return db.eng.ScanCacheStats()
}

// ScanPool is a bounded pool of helper goroutines for parallel segment
// scans; see NewScanPool.
type ScanPool = workpool.Pool

// ScanPoolStats are a scan pool's gauges and counters.
type ScanPoolStats = workpool.Stats

// NewScanPool creates a scan worker pool capping total scan
// parallelism at the given worker count — the scanning query's own
// goroutine plus workers-1 helpers, clamped to the machine's cores
// (scan helpers are CPU-bound, so a wider pool only adds scheduling
// overhead). Share one pool across several databases (SetScanPool) to
// govern their combined scan CPU in one place; a non-positive count
// yields fully sequential scanning.
func NewScanPool(workers int) *ScanPool {
	return workpool.New(min(workers, runtime.GOMAXPROCS(0)) - 1)
}

// SetScanPool installs the worker pool parallel scans draw helpers
// from. Without an explicit pool the engine shares the process-wide
// default, sized to GOMAXPROCS. A nil pool is ignored.
func (db *DB) SetScanPool(p *ScanPool) { db.eng.SetScanPool(p) }

// ScanPoolStats reports the scan worker pool's counters.
func (db *DB) ScanPoolStats() ScanPoolStats { return db.eng.ScanPool().Stats() }

// SegmentStats reports the store's LSM layout: sealed segments versus
// active memtables.
func (db *DB) SegmentStats() eventstore.SegmentStats {
	return db.store.SegmentStats()
}

// Save writes a snapshot of the database to w.
func (db *DB) Save(w io.Writer) error { return db.store.Encode(w) }

// Load reads a snapshot into an empty database.
func (db *DB) Load(r io.Reader) error { return db.store.Decode(r) }

// SaveFile and LoadFile persist snapshots to disk.
func (db *DB) SaveFile(path string) error { return db.store.SaveFile(path) }

// LoadFile opens a database from a snapshot file with default options.
func LoadFile(path string) (*DB, error) {
	return LoadFileWithOptions(path, eventstore.DefaultOptions(), engine.Config{})
}

// LoadFileWithOptions opens a snapshot file with explicit storage and
// engine configurations.
func LoadFileWithOptions(path string, storage StorageOptions, cfg EngineConfig) (*DB, error) {
	store, err := eventstore.LoadFile(path, storage)
	if err != nil {
		return nil, err
	}
	return &DB{store: store, eng: engine.NewWithConfig(store, cfg)}, nil
}

// Stats summarizes the database contents.
type Stats struct {
	Events     int
	Partitions int
	Processes  int
	Files      int
	Netconns   int
	Bytes      uint64
}

// Stats returns database statistics.
func (db *DB) Stats() Stats {
	s := db.store.Stats()
	return Stats{
		Events:     s.Events,
		Partitions: s.Partitions,
		Processes:  s.Processes,
		Files:      s.Files,
		Netconns:   s.Netconns,
		Bytes:      s.ApproxBytes,
	}
}

// Store exposes the underlying event store for advanced integrations
// (baseline loaders, experiment harnesses).
func (db *DB) Store() *eventstore.Store { return db.store }

// FromStore wraps an existing event store in a DB, for integrations that
// build stores directly (generators, experiment harnesses).
func FromStore(store *eventstore.Store) *DB {
	return &DB{store: store, eng: engine.New(store)}
}

// DefaultStorage returns the fully optimized storage configuration.
func DefaultStorage() StorageOptions { return eventstore.DefaultOptions() }

// PlainStorage returns the unoptimized storage configuration (ablations).
func PlainStorage() StorageOptions { return eventstore.PlainOptions() }
