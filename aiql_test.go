package aiql_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	aiql "github.com/aiql/aiql"
)

func demoDB(t *testing.T) *aiql.DB {
	t.Helper()
	db := aiql.Open()
	base := time.Date(2018, 5, 10, 13, 30, 0, 0, time.UTC)
	at := func(sec int) int64 { return base.Add(time.Duration(sec) * time.Second).UnixNano() }
	cmd := aiql.Process{PID: 410, ExeName: "cmd.exe", Path: `C:\Windows\System32\cmd.exe`, User: "dbadmin"}
	osql := aiql.Process{PID: 412, ExeName: "osql.exe", Path: `C:\osql.exe`, User: "dbadmin"}
	sqlservr := aiql.Process{PID: 301, ExeName: "sqlservr.exe", Path: `C:\sqlservr.exe`, User: "system"}
	tool := aiql.Process{PID: 905, ExeName: "sbblv.exe", Path: `C:\Temp\sbblv.exe`, User: "dbadmin"}
	dump := aiql.File{Path: `C:\SQLData\backup1.dmp`, Owner: "system"}
	conn := aiql.Netconn{SrcIP: "10.0.0.2", SrcPort: 48600, DstIP: "203.0.113.129", DstPort: 443, Protocol: "tcp"}
	db.AppendAll([]aiql.Record{
		{AgentID: 7, Subject: cmd, Op: aiql.OpStart, ObjType: aiql.EntityProcess, ObjProc: osql, StartTS: at(0)},
		{AgentID: 7, Subject: sqlservr, Op: aiql.OpWrite, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: at(30), Amount: 850000},
		{AgentID: 7, Subject: tool, Op: aiql.OpRead, ObjType: aiql.EntityFile, ObjFile: dump, StartTS: at(60), Amount: 850000},
		{AgentID: 7, Subject: tool, Op: aiql.OpWrite, ObjType: aiql.EntityNetconn, ObjConn: conn, StartTS: at(90), Amount: 850000},
	})
	db.Flush()
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := demoDB(t)
	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	res, err := db.Query(`
proc p1["%cmd.exe"] start proc p2 as evt1
proc p3 write file f["%backup1.dmp"] as evt2
proc p4 read file f as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, p4, f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows:\n%s", res.Table())
	}
	want := []string{"cmd.exe", "osql.exe", "sqlservr.exe", "sbblv.exe", `C:\SQLData\backup1.dmp`}
	for i, cell := range res.Rows[0] {
		if cell != want[i] {
			t.Errorf("col %d = %q, want %q", i, cell, want[i])
		}
	}
}

func TestCheckAndKind(t *testing.T) {
	if err := aiql.Check(`proc p start proc q as e return p`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := aiql.Check(`proc p start file f as e return p`); err == nil {
		t.Error("invalid query accepted")
	}
	kind, err := aiql.QueryKind(`forward: proc p ->[write] file f return f`)
	if err != nil || kind != "dependency" {
		t.Errorf("kind = %q, %v", kind, err)
	}
	kind, _ = aiql.QueryKind(`window = 1 min, step = 1 min
proc p write ip i as e return count(e)`)
	if kind != "anomaly" {
		t.Errorf("kind = %q", kind)
	}
}

func TestExplainPublic(t *testing.T) {
	db := demoDB(t)
	plan, err := db.Explain(`
proc p1["%cmd.exe"] start proc p2 as evt1
proc p3 write file f as evt2
return p1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "evt1") || !strings.Contains(plan, "estimated matches") {
		t.Errorf("plan = %q", plan)
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := demoDB(t)
	path := filepath.Join(t.TempDir(), "snap.aiql")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := aiql.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Errorf("loaded %d events, want %d", db2.Len(), db.Len())
	}
	res, err := db2.Query(`proc p read file f as e return distinct p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "sbblv.exe" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := aiql.LoadFile(filepath.Join(t.TempDir(), "nope.aiql")); err == nil {
		t.Error("expected error for missing snapshot")
	}
	// corrupted snapshot
	bad := filepath.Join(t.TempDir(), "bad.aiql")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := aiql.LoadFile(bad); err == nil {
		t.Error("expected error for corrupted snapshot")
	}
}

func TestStatsAndTimeRange(t *testing.T) {
	db := demoDB(t)
	st := db.Stats()
	if st.Events != 4 || st.Processes != 4 || st.Files != 1 || st.Netconns != 1 {
		t.Errorf("stats = %+v", st)
	}
	lo, hi := db.TimeRange()
	if !hi.After(lo) {
		t.Errorf("time range [%v, %v]", lo, hi)
	}
}

func TestAnomalyThroughPublicAPI(t *testing.T) {
	db := demoDB(t)
	res, err := db.Query(`
(from "05/10/2018 13:30:00" to "05/10/2018 13:40:00")
window = 1 min, step = 1 min
proc p write ip i as evt
return p, sum(evt.amount) as total
group by p
having total > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "sbblv.exe" {
		t.Errorf("rows = %v", res.Rows)
	}
}

const investigationQuery = `
proc p1["%cmd.exe"] start proc p2 as evt1
proc p3 write file f["%backup1.dmp"] as evt2
proc p4 read file f as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, p4, f`

// TestMigrateRoundTrip covers the one-shot `aiql -migrate` path: a
// legacy gob snapshot converted to a durable directory must answer
// queries identically, and OpenPath must route to the right loader for
// both on-disk forms.
func TestMigrateRoundTrip(t *testing.T) {
	db := demoDB(t)
	want, err := db.Query(investigationQuery)
	if err != nil {
		t.Fatal(err)
	}

	gobPath := filepath.Join(t.TempDir(), "legacy.aiql")
	if err := db.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}

	// the -migrate path: load the gob snapshot, write the directory
	loaded, err := aiql.LoadFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := loaded.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{gobPath, dir} {
		got, err := aiql.OpenPath(path)
		if err != nil {
			t.Fatalf("OpenPath(%s): %v", path, err)
		}
		res, err := got.Query(investigationQuery)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table() != want.Table() {
			t.Fatalf("query results differ after migration via %s:\n%s\nwant:\n%s", path, res.Table(), want.Table())
		}
		if got.Len() != db.Len() {
			t.Fatalf("%s: %d events, want %d", path, got.Len(), db.Len())
		}
		if err := got.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// the migrated directory is a real durable store: it accepts
	// appends, recovers them, and reports durable stats
	dur, err := aiql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := dur.DurableStats(); st.SegmentFiles == 0 || st.ManifestEdition == 0 {
		t.Fatalf("durable stats after migration: %+v", st)
	}
	dur.Append(aiql.Record{
		AgentID: 7,
		Subject: aiql.Process{PID: 999, ExeName: "late.exe", Path: `C:\late.exe`, User: "x"},
		Op:      aiql.OpRead,
		ObjType: aiql.EntityFile,
		ObjFile: aiql.File{Path: `C:\late.txt`},
		StartTS: time.Date(2018, 5, 10, 14, 0, 0, 0, time.UTC).UnixNano(),
	})
	dur.Flush()
	n := dur.Len()
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := aiql.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != n {
		t.Fatalf("reopened migrated store has %d events, want %d", reopened.Len(), n)
	}
}

// TestPrepareAcceptance is the acceptance check for the prepared API:
// DB.Prepare + Stmt.Exec with typed $name parameters works across the
// multievent, dependency, and anomaly families.
func TestPrepareAcceptance(t *testing.T) {
	db := demoDB(t)
	ctx := context.Background()

	t.Run("multievent", func(t *testing.T) {
		stmt, err := db.Prepare(`
(at $day)
proc p1[$starter] start proc p2 as evt1
proc p3 write file f["%backup1.dmp"] as evt2
proc p4 read file f as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, p4, f`)
		if err != nil {
			t.Fatal(err)
		}
		sig := stmt.Params()
		if len(sig) != 2 || sig[0] != (aiql.ParamSpec{Name: "day", Type: aiql.ParamTime}) ||
			sig[1] != (aiql.ParamSpec{Name: "starter", Type: aiql.ParamString}) {
			t.Fatalf("signature = %+v", sig)
		}
		res, err := stmt.Exec(ctx, aiql.Params{"day": "05/10/2018", "starter": "%cmd.exe"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != "cmd.exe" {
			t.Fatalf("rows:\n%s", res.Table())
		}
		miss, err := stmt.Exec(ctx, aiql.Params{"day": "05/11/2018", "starter": "%cmd.exe"})
		if err != nil {
			t.Fatal(err)
		}
		if len(miss.Rows) != 0 {
			t.Fatalf("wrong-day binding matched:\n%s", miss.Table())
		}
	})

	t.Run("dependency", func(t *testing.T) {
		stmt, err := db.Prepare(`backward: ip i1[dstip = $dst] <-[write] proc p ->[read] file f
return distinct p, f`)
		if err != nil {
			t.Fatal(err)
		}
		if stmt.Kind() != "dependency" {
			t.Fatalf("kind = %q", stmt.Kind())
		}
		res, err := stmt.Exec(ctx, aiql.Params{"dst": "203.0.113.129"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != "sbblv.exe" {
			t.Fatalf("rows:\n%s", res.Table())
		}
	})

	t.Run("anomaly", func(t *testing.T) {
		stmt, err := db.Prepare(`
(from $a to $b)
window = 1 min, step = 1 min
proc p write ip i as evt
return p, sum(evt.amount) as total
group by p
having total > 0`)
		if err != nil {
			t.Fatal(err)
		}
		if stmt.Kind() != "anomaly" {
			t.Fatalf("kind = %q", stmt.Kind())
		}
		res, err := stmt.Exec(ctx, aiql.Params{"a": "05/10/2018 13:30:00", "b": "05/10/2018 13:40:00"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != "sbblv.exe" {
			t.Fatalf("rows:\n%s", res.Table())
		}
	})

	t.Run("cursor and explain", func(t *testing.T) {
		stmt, err := db.Prepare(`proc p[$exe] read || write file f return p, f`)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := stmt.ExecCursor(ctx, aiql.Params{"exe": "%"}, aiql.CursorOptions{Limit: 1})
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for cur.Next() {
			rows++
		}
		cur.Close()
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		if rows != 1 {
			t.Fatalf("limit-1 cursor yielded %d rows", rows)
		}
		entries, err := stmt.Explain()
		if err != nil || len(entries) != 1 {
			t.Fatalf("explain = %+v, %v", entries, err)
		}
	})

	t.Run("binding errors", func(t *testing.T) {
		stmt, err := db.Prepare(`proc p[$exe] start proc q return p`)
		if err != nil {
			t.Fatal(err)
		}
		var pe *aiql.ParamError
		if err := stmt.Check(aiql.Params{}); !errors.As(err, &pe) {
			t.Errorf("missing binding: %v", err)
		}
		if err := stmt.Check(aiql.Params{"exe": "%x", "nope": 1}); !errors.As(err, &pe) {
			t.Errorf("unknown binding: %v", err)
		}
		if err := stmt.Check(aiql.Params{"exe": "%x"}); err != nil {
			t.Errorf("valid binding rejected: %v", err)
		}
	})
}
